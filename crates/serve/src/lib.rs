//! Resilient multi-engine serving: a health-checked pool of ephemeral
//! vector engines with deadlines, retries, and circuit breaking.
//!
//! The paper builds one ephemeral engine per core; a chip that *serves*
//! with them needs a layer that keeps answering when engines brown out,
//! silently corrupt, or die. This crate is that layer, as a
//! deterministic discrete-event model grounded in the rest of the
//! workspace:
//!
//! - [`ServiceProfile`] prices requests with the real `eve-sim` timing
//!   model (per-workload EVE and O3+DV cycle counts, plus the measured
//!   shared-LLC/DRAM contention curve from [`eve_sim::contention_profile`]).
//! - [`CircuitBreaker`] is the closed → open → half-open machine that
//!   stands between the scheduler and each engine; [`health`] converts
//!   PR 4's `ShadowChecker` escalation-ladder snapshots
//!   ([`eve_sim::EngineHealth`]) into breaker signals.
//! - [`Backoff`] spaces retries with capped exponential delays and
//!   deterministic per-request jitter.
//! - [`queue`] sheds load at the door when the queue is full or the
//!   deadline-feasibility bound says admission would be wasted work.
//! - [`FaultStorm`] scripts engine-health timelines (brownouts, silent
//!   windows, kills) deterministically from a seed.
//! - [`ServeSim`] ties it together on a simulated clock and produces a
//!   [`ServeReport`]; [`audit_serve`] replays a traced run against the
//!   report and enforces the serving conservation identities.
//!
//! At fleet scale, [`ClusterSim`] grows the single pool into a sharded
//! cluster: a seeded consistent-hash [`Router`] places requests across
//! N shards, [`TenantQueues`] drain fair-share multi-tenant traffic by
//! weighted deficit round-robin, [`BatchPolicy`] coalesces same-kernel
//! requests into amortized dispatches, idle shards work-steal from
//! unroutable peers, and the [`Ladder`] degrades service gracefully
//! (full → batch-only → shed low-weight tenants → fallback-only)
//! instead of collapsing. The [`ElasticController`] makes the
//! engine/L2-way split itself elastic: it spawns engines under vector
//! pressure (paying the measured way-partition flush cost), retires
//! them through a safe drain when traffic recedes, and guards the
//! partition with dwell hysteresis, a thrash window, and rollback.
//! [`audit_cluster`] extends the replay identity to routing, stealing,
//! shedding, and reconfiguration decisions. Arrivals
//! come from a seeded [`TrafficShape`] — the uniform baseline, a
//! diurnal load curve, count-based bursts, or a periodic hot-key
//! storm — all pure functions of the traffic seed.
//!
//! The [`net`] module makes the router↔shard wire itself unreliable:
//! with [`NetPolicy`] enabled, every request, response, cancel, and
//! heartbeat is a message on a seeded lossy [`Link`] (delay, loss,
//! duplication, reordering), and the cluster rebuilds exactly-once
//! *effects* from at-least-once *delivery* — sender-side timeouts and
//! retransmits, a per-shard idempotency [`DedupTable`] that answers
//! redelivered requests from cache, windowed-p99 hedged requests with
//! first-response-wins cancellation, and a heartbeat failure
//! [`Detector`] whose suspicion feeds routing and the [`Ladder`]. A
//! partition becomes nothing but 100% loss on a link, and
//! [`audit_cluster`] replays two new identities: per-link message
//! conservation and zero double-applied executions.
//!
//! # Examples
//!
//! ```
//! use eve_serve::{FaultStorm, ServeConfig, ServeSim, ServiceProfile, TrafficConfig};
//!
//! let profile = ServiceProfile::synthetic(3, 1_000, 4_000, 4);
//! let storm = FaultStorm::kill_one(1, 50_000);
//! let report = ServeSim::new(
//!     ServeConfig::default(),
//!     profile,
//!     TrafficConfig::default(),
//!     storm,
//! )
//! .unwrap()
//! .run();
//! // One dead engine out of four: the breaker isolates it and the
//! // pool keeps serving.
//! assert!(report.availability >= 0.99);
//! assert_eq!(report.sdc, 0);
//! ```

pub mod audit;
pub mod backoff;
pub mod batch;
pub mod breaker;
pub mod cluster;
pub mod cluster_report;
pub mod degrade;
pub mod elastic;
pub mod health;
pub mod net;
pub mod profile;
pub mod queue;
pub mod report;
pub mod router;
pub mod shape;
pub mod sim;
pub mod storm;
pub mod tenancy;

pub use audit::{
    audit_cluster, audit_serve, ClusterAuditSummary, ServeAuditFailure, ServeAuditSummary,
};
pub use backoff::{Backoff, BackoffPolicy};
pub use batch::BatchPolicy;
pub use breaker::{BreakerPolicy, BreakerState, BreakerStats, CircuitBreaker};
pub use cluster::{ClusterConfig, ClusterSim, ClusterTraffic, StealPolicy};
pub use cluster_report::{ClusterReport, ShardReport, TenantReport};
pub use degrade::{Ladder, LadderEvent, LadderPolicy, ServiceLevel};
pub use elastic::{
    ElasticAction, ElasticController, ElasticEvent, ElasticEventKind, ElasticPolicy, ShardSignal,
};
pub use health::{apply_signal, engine_health, signals, spawn_target_ok, HealthSignal};
pub use net::{
    ClassStats, DedupTable, Detector, DetectorEvent, Link, MsgClass, NetCounters, NetPolicy,
    RttWindow,
};
pub use profile::ServiceProfile;
pub use queue::{admit, estimated_wait, AdmissionPolicy, AdmissionView, ShedReason};
pub use report::{EngineReport, ServeReport};
pub use router::RouteError;
pub use router::Router;
pub use shape::{arrivals, Arrival, TrafficShape};
pub use sim::{ServeConfig, ServeError, ServeSim, TrafficConfig};
pub use storm::{FaultStorm, StormEvent, StormEventKind};
pub use tenancy::{tenant_mix, TenantQueues, TenantSpec};
