//! The elastic reconfiguration controller: spawning and retiring
//! engines under live traffic.
//!
//! EVE's whole economy is ephemeral — an engine exists by donating
//! half its core's private-L2 ways (§V-E) and gives them back when
//! vector work ends — yet the cluster's engine/cache split has been
//! static per run. [`ElasticController`] makes it a live control knob:
//! it watches each shard's windowed pressure (backlog against queue
//! capacity) and decides when to **spawn** an engine (way-partition an
//! idle core's L2, pay the measured flush cost), **retire** one
//! (quiesce: stop admitting work, drain the in-flight batch, then
//! return the ways), or leave the partition alone.
//!
//! Safety is the headline, not the scaling math:
//!
//! * **dwell/cooldown hysteresis** — a shard that just reconfigured
//!   cannot reconfigure again until its dwell elapses, so one noisy
//!   window cannot flap the partition;
//! * **thrash guard** — a cluster-wide sliding window bounds total
//!   reconfiguration *starts*; when the budget is spent the controller
//!   goes quiet no matter what the metrics say;
//! * **rollback** — a spawn whose target goes unhealthy during the
//!   warmup flush is rolled back (ways return to the cache, the slot
//!   re-parks), and a drain that sees pressure return before it
//!   completes is rolled back (the engine stays active);
//! * **accounting** — every decision is an [`ElasticEvent`]; starts,
//!   commits, and rollbacks must reconcile exactly, and
//!   [`crate::audit_cluster`] replays the event stream against the
//!   report to prove no request was dropped or double-run across a
//!   reconfiguration.
//!
//! The controller is deterministic: decisions are pure functions of
//! `(policy, observed signals, simulated time)` — no wall clock, no
//! RNG — so cluster runs stay byte-identical at any campaign thread
//! count. Grounded in ARCANE's adaptive cache-integrated compute and
//! the Bicameral Cache's scalar/vector partition trade-off (PAPERS.md).

use crate::degrade::WindowCounter;

/// Elastic reconfiguration knobs. `Copy` so it rides inside
/// [`crate::ClusterConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticPolicy {
    /// Master switch; disabled keeps the historical static partition.
    pub enabled: bool,
    /// Floor on active engines per shard (never retire below this).
    pub min_engines: usize,
    /// Ceiling on engines per shard (spawn targets beyond the
    /// configured base come from parked slots up to this many).
    pub max_engines: usize,
    /// Per-shard backlog ratio (queued / queue capacity) at or above
    /// which the controller argues for a spawn.
    pub scale_up_backlog: f64,
    /// Per-shard backlog ratio at or below which an over-provisioned
    /// shard argues for a retire.
    pub scale_down_backlog: f64,
    /// Width of the thrash-guard window, cycles.
    pub window: u64,
    /// Minimum cycles between reconfiguration starts on one shard.
    pub dwell: u64,
    /// Most reconfiguration starts allowed cluster-wide per window.
    pub max_reconfigs_per_window: u64,
}

impl Default for ElasticPolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            min_engines: 1,
            max_engines: 4,
            scale_up_backlog: 0.50,
            scale_down_backlog: 0.05,
            window: 64_000,
            dwell: 8_000,
            max_reconfigs_per_window: 4,
        }
    }
}

/// What the controller wants done to one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElasticAction {
    /// Way-partition a parked core's L2 and warm an engine up.
    Spawn,
    /// Quiesce one engine and return its ways to the cache.
    Retire,
}

/// One recorded reconfiguration event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElasticEventKind {
    /// A spawn began: ways donated, warmup flush under way.
    SpawnStart,
    /// The warmed engine came online.
    SpawnCommit,
    /// The target went unhealthy mid-warmup: ways returned, slot
    /// re-parked.
    SpawnRollback,
    /// A retire began: the engine stopped admitting work.
    RetireStart,
    /// The drain completed: ways returned to the cache.
    RetireCommit,
    /// Pressure returned mid-drain: the retire was aborted and the
    /// engine stayed active.
    RetireRollback,
}

impl ElasticEventKind {
    /// Stable lowercase name for reports and traces.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::SpawnStart => "spawn_start",
            Self::SpawnCommit => "spawn_commit",
            Self::SpawnRollback => "spawn_rollback",
            Self::RetireStart => "retire_start",
            Self::RetireCommit => "retire_commit",
            Self::RetireRollback => "retire_rollback",
        }
    }

    /// Whether this kind opens a reconfiguration (counts against the
    /// thrash guard).
    #[must_use]
    pub fn is_start(self) -> bool {
        matches!(self, Self::SpawnStart | Self::RetireStart)
    }
}

/// One reconfiguration event, as recorded in the [`crate::ClusterReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElasticEvent {
    /// When it happened.
    pub at: u64,
    /// The shard reconfigured.
    pub shard: usize,
    /// What happened.
    pub kind: ElasticEventKind,
    /// Active engines on that shard after the event took effect.
    pub active_after: usize,
}

/// One shard's observed pressure, as the cluster loop sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSignal {
    /// Queued requests over the shard's queue capacity.
    pub backlog: f64,
    /// Engines currently active (serving or idle).
    pub active: usize,
    /// Engines mid-spawn (warming up).
    pub spawning: usize,
    /// Engines mid-drain.
    pub draining: usize,
}

/// The deterministic elastic controller: per-shard dwell stamps, the
/// cluster-wide thrash window, and the full event/tally record.
#[derive(Debug, Clone)]
pub struct ElasticController {
    policy: ElasticPolicy,
    /// Per-shard time of the last reconfiguration start.
    last_start: Vec<Option<u64>>,
    /// Cluster-wide reconfiguration starts, windowed.
    starts: WindowCounter,
    events: Vec<ElasticEvent>,
    spawns: u64,
    retires: u64,
    spawn_rollbacks: u64,
    retire_rollbacks: u64,
    drain_cycles: u64,
}

impl ElasticController {
    /// A controller for `shards` shards.
    #[must_use]
    pub fn new(policy: ElasticPolicy, shards: usize) -> Self {
        Self {
            policy,
            last_start: vec![None; shards],
            starts: WindowCounter::new(policy.window.max(1)),
            events: Vec::new(),
            spawns: 0,
            retires: 0,
            spawn_rollbacks: 0,
            retire_rollbacks: 0,
            drain_cycles: 0,
        }
    }

    /// The policy this controller runs.
    #[must_use]
    pub fn policy(&self) -> ElasticPolicy {
        self.policy
    }

    /// Recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[ElasticEvent] {
        &self.events
    }

    /// Committed spawns.
    #[must_use]
    pub fn spawns(&self) -> u64 {
        self.spawns
    }

    /// Committed retires.
    #[must_use]
    pub fn retires(&self) -> u64 {
        self.retires
    }

    /// Spawns rolled back mid-warmup.
    #[must_use]
    pub fn spawn_rollbacks(&self) -> u64 {
        self.spawn_rollbacks
    }

    /// Retires aborted mid-drain.
    #[must_use]
    pub fn retire_rollbacks(&self) -> u64 {
        self.retire_rollbacks
    }

    /// Total cycles engines spent draining.
    #[must_use]
    pub fn drain_cycles(&self) -> u64 {
        self.drain_cycles
    }

    /// Whether `shard` may start a reconfiguration at `now`: its dwell
    /// has elapsed and the cluster-wide thrash budget has room.
    fn may_start(&self, now: u64, shard: usize) -> bool {
        if let Some(last) = self.last_start[shard] {
            if now < last.saturating_add(self.policy.dwell) {
                return false;
            }
        }
        self.starts.sum(now) < self.policy.max_reconfigs_per_window
    }

    /// The control decision for one shard at `now`, or `None` to leave
    /// the partition alone. Pure in `(policy, signal, now)` plus the
    /// controller's own recorded history — no clock, no RNG.
    #[must_use]
    pub fn decide(&self, now: u64, shard: usize, signal: &ShardSignal) -> Option<ElasticAction> {
        if !self.policy.enabled || !self.may_start(now, shard) {
            return None;
        }
        // Never overlap reconfigurations on one shard: a shard warms
        // up or drains one engine at a time.
        if signal.spawning > 0 || signal.draining > 0 {
            return None;
        }
        if signal.backlog >= self.policy.scale_up_backlog && signal.active < self.policy.max_engines
        {
            return Some(ElasticAction::Spawn);
        }
        if signal.backlog <= self.policy.scale_down_backlog
            && signal.active > self.policy.min_engines
        {
            return Some(ElasticAction::Retire);
        }
        None
    }

    /// Records one event; start kinds arm the shard's dwell and charge
    /// the thrash window.
    pub fn record(&mut self, event: ElasticEvent) {
        if event.kind.is_start() {
            self.last_start[event.shard] = Some(event.at);
            self.starts.add(event.at, 1);
        }
        match event.kind {
            ElasticEventKind::SpawnCommit => self.spawns += 1,
            ElasticEventKind::SpawnRollback => self.spawn_rollbacks += 1,
            ElasticEventKind::RetireCommit => self.retires += 1,
            ElasticEventKind::RetireRollback => self.retire_rollbacks += 1,
            ElasticEventKind::SpawnStart | ElasticEventKind::RetireStart => {}
        }
        self.events.push(event);
    }

    /// Adds one completed drain's duration to the drain-cycle tally.
    pub fn add_drain_cycles(&mut self, cycles: u64) {
        self.drain_cycles += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ElasticPolicy {
        ElasticPolicy {
            enabled: true,
            min_engines: 1,
            max_engines: 4,
            window: 10_000,
            dwell: 2_000,
            max_reconfigs_per_window: 3,
            ..ElasticPolicy::default()
        }
    }

    fn hot(active: usize) -> ShardSignal {
        ShardSignal {
            backlog: 0.9,
            active,
            spawning: 0,
            draining: 0,
        }
    }

    fn cold(active: usize) -> ShardSignal {
        ShardSignal {
            backlog: 0.0,
            active,
            spawning: 0,
            draining: 0,
        }
    }

    fn start(ctl: &mut ElasticController, at: u64, shard: usize, kind: ElasticEventKind) {
        ctl.record(ElasticEvent {
            at,
            shard,
            kind,
            active_after: 1,
        });
    }

    #[test]
    fn disabled_controller_never_acts() {
        let ctl = ElasticController::new(ElasticPolicy::default(), 2);
        assert_eq!(ctl.decide(0, 0, &hot(1)), None);
        assert_eq!(ctl.decide(0, 1, &cold(4)), None);
    }

    #[test]
    fn pressure_maps_to_spawn_and_idleness_to_retire() {
        let ctl = ElasticController::new(policy(), 1);
        assert_eq!(ctl.decide(0, 0, &hot(2)), Some(ElasticAction::Spawn));
        assert_eq!(ctl.decide(0, 0, &cold(2)), Some(ElasticAction::Retire));
        // Middling backlog: leave the partition alone.
        let mid = ShardSignal {
            backlog: 0.2,
            ..hot(2)
        };
        assert_eq!(ctl.decide(0, 0, &mid), None);
    }

    #[test]
    fn bounds_are_respected() {
        let ctl = ElasticController::new(policy(), 1);
        assert_eq!(ctl.decide(0, 0, &hot(4)), None, "at max_engines");
        assert_eq!(ctl.decide(0, 0, &cold(1)), None, "at min_engines");
    }

    #[test]
    fn in_flight_reconfigs_block_new_ones() {
        let ctl = ElasticController::new(policy(), 1);
        let warming = ShardSignal {
            spawning: 1,
            ..hot(2)
        };
        assert_eq!(ctl.decide(0, 0, &warming), None);
        let draining = ShardSignal {
            draining: 1,
            ..cold(2)
        };
        assert_eq!(ctl.decide(0, 0, &draining), None);
    }

    #[test]
    fn dwell_is_per_shard() {
        let mut ctl = ElasticController::new(policy(), 2);
        start(&mut ctl, 100, 0, ElasticEventKind::SpawnStart);
        assert_eq!(ctl.decide(101, 0, &hot(2)), None, "shard 0 dwells");
        assert_eq!(
            ctl.decide(101, 1, &hot(2)),
            Some(ElasticAction::Spawn),
            "shard 1 unaffected"
        );
        assert_eq!(
            ctl.decide(100 + policy().dwell, 0, &hot(2)),
            Some(ElasticAction::Spawn),
            "dwell elapsed"
        );
    }

    #[test]
    fn thrash_guard_bounds_starts_per_window() {
        let mut ctl = ElasticController::new(policy(), 8);
        // Three starts on distinct shards inside one window spend the
        // whole cluster budget.
        for (i, at) in [(0usize, 0u64), (1, 10), (2, 20)] {
            assert!(ctl.decide(at, i, &hot(2)).is_some());
            start(&mut ctl, at, i, ElasticEventKind::SpawnStart);
        }
        assert_eq!(ctl.decide(30, 3, &hot(2)), None, "budget spent");
        // Far outside the window the budget refills.
        assert_eq!(ctl.decide(200_000, 3, &hot(2)), Some(ElasticAction::Spawn));
    }

    #[test]
    fn tallies_reconcile_with_events() {
        let mut ctl = ElasticController::new(policy(), 1);
        start(&mut ctl, 0, 0, ElasticEventKind::SpawnStart);
        start(&mut ctl, 10, 0, ElasticEventKind::SpawnCommit);
        start(&mut ctl, 20, 0, ElasticEventKind::SpawnStart);
        start(&mut ctl, 30, 0, ElasticEventKind::SpawnRollback);
        start(&mut ctl, 40, 0, ElasticEventKind::RetireStart);
        start(&mut ctl, 50, 0, ElasticEventKind::RetireCommit);
        ctl.add_drain_cycles(10);
        assert_eq!(ctl.spawns(), 1);
        assert_eq!(ctl.spawn_rollbacks(), 1);
        assert_eq!(ctl.retires(), 1);
        assert_eq!(ctl.retire_rollbacks(), 0);
        assert_eq!(ctl.drain_cycles(), 10);
        let starts = ctl.events().iter().filter(|e| e.kind.is_start()).count();
        assert_eq!(
            starts as u64,
            ctl.spawns() + ctl.spawn_rollbacks() + ctl.retires()
        );
    }
}
