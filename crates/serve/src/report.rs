//! The serving run's result document.
//!
//! [`ServeReport`] carries every tally the event loop keeps, the
//! request-level service metrics (availability, goodput, deadline-miss
//! rate, p50/p99 sojourn), and a per-engine section with breaker
//! transition counts. [`ServeReport::to_json`] renders it with the
//! repo's deterministic JSON builder, so two identical runs produce
//! byte-identical documents — the property the campaign's serial ==
//! parallel CI gate rests on.

use crate::breaker::{BreakerState, BreakerStats};
use eve_common::json::JsonValue;

/// One pool engine's tallies after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineReport {
    /// Requests placed on this engine (probes included).
    pub dispatches: u64,
    /// Requests it completed successfully.
    pub completions: u64,
    /// Detected failures it produced.
    pub failures: u64,
    /// Whether the engine was dead when the run ended.
    pub dead: bool,
    /// Breaker state when the run ended.
    pub final_state: BreakerState,
    /// Breaker transition counters.
    pub breaker: BreakerStats,
}

impl EngineReport {
    /// Deterministic JSON form.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("dispatches", JsonValue::from(self.dispatches)),
            ("completions", JsonValue::from(self.completions)),
            ("failures", JsonValue::from(self.failures)),
            ("dead", JsonValue::from(self.dead)),
            ("state", JsonValue::from(self.final_state.as_str())),
            ("opened", JsonValue::from(self.breaker.opened)),
            ("reclosed", JsonValue::from(self.breaker.reclosed)),
            ("probes", JsonValue::from(self.breaker.probes)),
        ])
    }
}

/// Everything one serving run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Engine count.
    pub pool: usize,
    /// Requests the traffic model generated.
    pub requests: u64,
    /// When the last event fired.
    pub end_cycle: u64,
    /// Requests that arrived (equals `requests`).
    pub arrivals: u64,
    /// Requests past admission control.
    pub admitted: u64,
    /// Requests refused because the queue was full.
    pub shed_capacity: u64,
    /// Requests refused by the deadline-feasibility bound.
    pub shed_infeasible: u64,
    /// Dispatch attempts onto pool engines.
    pub dispatches: u64,
    /// Detected engine failures.
    pub engine_failures: u64,
    /// Retry events scheduled.
    pub retries: u64,
    /// Requests that failed over to the O3+DV path.
    pub failovers: u64,
    /// Requests completed on an engine.
    pub completed_eve: u64,
    /// Requests completed on the fallback.
    pub completed_fallback: u64,
    /// Silent data corruptions that reached callers.
    pub sdc: u64,
    /// The SLO metric: admitted requests that received a *correct,
    /// in-deadline* answer, over all admitted requests.
    pub availability: f64,
    /// Successful engine dispatches / all engine dispatches — raw pool
    /// health, unsmoothed by retries.
    pub eve_attempt_success: f64,
    /// In-deadline completions / all arrivals (shed requests count
    /// against it).
    pub goodput: f64,
    /// Late completions / completions.
    pub deadline_miss_rate: f64,
    /// Median sojourn (arrival → completion), cycles.
    pub p50_sojourn: u64,
    /// 99th-percentile sojourn, cycles.
    pub p99_sojourn: u64,
    /// Per-engine tallies.
    pub engines: Vec<EngineReport>,
}

impl ServeReport {
    /// Total shed requests.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed_capacity + self.shed_infeasible
    }

    /// Breaker open transitions summed over the pool.
    #[must_use]
    pub fn breaker_opens(&self) -> u64 {
        self.engines.iter().map(|e| e.breaker.opened).sum()
    }

    /// Breaker re-close transitions summed over the pool.
    #[must_use]
    pub fn breaker_recloses(&self) -> u64 {
        self.engines.iter().map(|e| e.breaker.reclosed).sum()
    }

    /// Deterministic JSON form.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("pool", JsonValue::from(self.pool as u64)),
            ("requests", JsonValue::from(self.requests)),
            ("end_cycle", JsonValue::from(self.end_cycle)),
            ("arrivals", JsonValue::from(self.arrivals)),
            ("admitted", JsonValue::from(self.admitted)),
            ("shed_capacity", JsonValue::from(self.shed_capacity)),
            ("shed_infeasible", JsonValue::from(self.shed_infeasible)),
            ("dispatches", JsonValue::from(self.dispatches)),
            ("engine_failures", JsonValue::from(self.engine_failures)),
            ("retries", JsonValue::from(self.retries)),
            ("failovers", JsonValue::from(self.failovers)),
            ("completed_eve", JsonValue::from(self.completed_eve)),
            (
                "completed_fallback",
                JsonValue::from(self.completed_fallback),
            ),
            ("sdc", JsonValue::from(self.sdc)),
            ("availability", JsonValue::from(self.availability)),
            (
                "eve_attempt_success",
                JsonValue::from(self.eve_attempt_success),
            ),
            ("goodput", JsonValue::from(self.goodput)),
            (
                "deadline_miss_rate",
                JsonValue::from(self.deadline_miss_rate),
            ),
            ("p50_sojourn", JsonValue::from(self.p50_sojourn)),
            ("p99_sojourn", JsonValue::from(self.p99_sojourn)),
            (
                "engines",
                JsonValue::Array(self.engines.iter().map(EngineReport::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeReport {
        ServeReport {
            pool: 2,
            requests: 10,
            end_cycle: 5_000,
            arrivals: 10,
            admitted: 9,
            shed_capacity: 0,
            shed_infeasible: 1,
            dispatches: 10,
            engine_failures: 1,
            retries: 1,
            failovers: 0,
            completed_eve: 9,
            completed_fallback: 0,
            sdc: 0,
            availability: 1.0,
            eve_attempt_success: 0.9,
            goodput: 0.9,
            deadline_miss_rate: 0.0,
            p50_sojourn: 1_000,
            p99_sojourn: 2_000,
            engines: vec![
                EngineReport {
                    dispatches: 6,
                    completions: 5,
                    failures: 1,
                    dead: false,
                    final_state: BreakerState::Closed,
                    breaker: BreakerStats::default(),
                };
                2
            ],
        }
    }

    #[test]
    fn json_round_trips_and_is_stable() {
        let r = sample();
        let a = r.to_json().to_pretty();
        let b = r.to_json().to_pretty();
        assert_eq!(a, b);
        assert!(a.contains("\"availability\""));
        assert!(a.contains("\"closed\""));
        let parsed = JsonValue::parse(&a).expect("own output parses");
        drop(parsed);
        assert_eq!(r.shed(), 1);
        assert_eq!(r.breaker_opens(), 0);
    }
}
