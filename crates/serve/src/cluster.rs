//! The sharded cluster simulation.
//!
//! [`ClusterSim`] composes everything the serving layer has grown so
//! far into one deterministic event loop: N shards (each a pool of
//! engines with per-engine circuit breakers) behind a seeded
//! consistent-hash [`Router`](crate::Router), per-tenant queues
//! drained by weighted deficit round-robin
//! ([`TenantQueues`](crate::TenantQueues)), and request batching that
//! coalesces compatible same-kernel requests into one engine dispatch
//! ([`BatchPolicy`](crate::BatchPolicy)).
//!
//! The robustness headline is the failure path:
//!
//! * when a shard becomes unroutable (scripted partition, or every
//!   breaker open), arrivals re-route along the hash ring and idle
//!   shards **work-steal** its queued requests, re-pricing each stolen
//!   request against the thief's own backlog and failing over the ones
//!   that can no longer meet their deadline;
//! * a cluster-level **graceful-degradation ladder**
//!   ([`Ladder`](crate::Ladder)) watches windowed failure rate,
//!   backlog, and shard availability, and sheds *features → tenants →
//!   the accelerator itself* instead of collapsing, with every
//!   transition recorded, traced, and audited.
//!
//! Everything runs on a simulated cycle clock — no wall time, no
//! global RNG — so identically-configured runs produce byte-identical
//! [`ClusterReport`]s at any campaign thread count.

use crate::backoff::{Backoff, BackoffPolicy};
use crate::batch::BatchPolicy;
use crate::breaker::{BreakerPolicy, BreakerState, CircuitBreaker};
use crate::cluster_report::{
    ClusterReport, LinkClassReport, LinkReport, ShardReport, TenantReport,
};
use crate::degrade::{Ladder, LadderPolicy, ServiceLevel};
use crate::elastic::{
    ElasticAction, ElasticController, ElasticEvent, ElasticEventKind, ElasticPolicy, ShardSignal,
};
use crate::health::spawn_target_ok;
use crate::net::{DedupTable, Detector, Link, MsgClass, NetCounters, NetPolicy, RttWindow};
use crate::profile::ServiceProfile;
use crate::queue::{admit, estimated_wait, AdmissionPolicy, AdmissionView, ShedReason};
use crate::report::EngineReport;
use crate::router::Router;
use crate::shape::TrafficShape;
use crate::sim::ServeError;
use crate::storm::{FaultStorm, StormEvent, StormEventKind};
use crate::tenancy::{TenantQueues, TenantSpec};
use eve_obs::Tracer;
use std::collections::BinaryHeap;

/// Work-stealing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealPolicy {
    /// Whether idle shards steal from unroutable peers at all.
    pub enabled: bool,
    /// Most requests moved per steal pass.
    pub max_per_pass: usize,
}

impl Default for StealPolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            max_per_pass: 8,
        }
    }
}

/// Cluster topology and policy knobs for one run.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Shard count.
    pub shards: usize,
    /// Engines per shard.
    pub engines_per_shard: usize,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Per-engine breaker tuning.
    pub breaker: BreakerPolicy,
    /// Retry-delay schedule.
    pub backoff: BackoffPolicy,
    /// Per-shard admission control.
    pub admission: AdmissionPolicy,
    /// Batch coalescing.
    pub batch: BatchPolicy,
    /// Degradation-ladder thresholds.
    pub ladder: LadderPolicy,
    /// Work stealing.
    pub steal: StealPolicy,
    /// Elastic engine/L2-way reconfiguration (disabled keeps the
    /// historical static partition).
    pub elastic: ElasticPolicy,
    /// The lossy router↔shard transport (disabled keeps the historical
    /// instantaneous-reliable dispatch, byte for byte).
    pub net: NetPolicy,
    /// Engine dispatch attempts per request before failover.
    pub max_attempts: u32,
    /// Cycles from dispatch onto faulty silicon to the detected
    /// failure.
    pub detect_latency: u64,
    /// Whether results are checked (silent windows become detected
    /// failures instead of SDCs).
    pub checked: bool,
    /// Seed for the hash ring and per-request jitter streams.
    pub seed: u64,
}

impl ClusterConfig {
    /// Physical engine slots per shard: the base pool plus however
    /// many extra slots the elastic ceiling can spawn into. Storm
    /// addressing and report shapes are in slot space, so a run's
    /// geometry is fixed whether or not the controller ever acts.
    #[must_use]
    pub fn slots_per_shard(&self) -> usize {
        if self.elastic.enabled {
            self.engines_per_shard.max(self.elastic.max_engines)
        } else {
            self.engines_per_shard
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            engines_per_shard: 4,
            vnodes: 16,
            breaker: BreakerPolicy::default(),
            backoff: BackoffPolicy::default(),
            admission: AdmissionPolicy::default(),
            batch: BatchPolicy::default(),
            ladder: LadderPolicy::default(),
            steal: StealPolicy::default(),
            elastic: ElasticPolicy::default(),
            net: NetPolicy::default(),
            max_attempts: 3,
            detect_latency: 500,
            checked: true,
            seed: 0xC1_0537,
        }
    }
}

/// The multi-tenant open-loop arrival process.
#[derive(Debug, Clone)]
pub struct ClusterTraffic {
    /// Requests to generate.
    pub requests: usize,
    /// Mean inter-arrival gap in cycles.
    pub mean_gap: u64,
    /// The arrival-process family (diurnal curve, bursts, key storm);
    /// [`TrafficShape::Uniform`] is the historical baseline.
    pub shape: TrafficShape,
    /// Deadline slack over the slower of the two solo service paths.
    pub deadline_slack: f64,
    /// Routing-key space: keys are uniform on `[0, keys)` outside
    /// hot-key-skew windows.
    pub keys: u64,
    /// The tenant mix; traffic splits by `share`, scheduling by
    /// `weight`.
    pub tenants: Vec<TenantSpec>,
    /// Seed for arrivals, tenants, workloads, and keys.
    pub seed: u64,
}

impl Default for ClusterTraffic {
    fn default() -> Self {
        Self {
            requests: 400,
            mean_gap: 1_000,
            shape: TrafficShape::Uniform,
            deadline_slack: 6.0,
            keys: 1024,
            tenants: crate::tenancy::tenant_mix(3),
            seed: 0x7E4A47,
        }
    }
}

/// Heap events, processed in `(at, seq)` order.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Storm event `idx` fires.
    Storm(usize),
    /// Request `idx` arrives.
    Arrival(usize),
    /// Request `idx` re-enters a queue after backoff.
    Retry(usize),
    /// Batch `idx`'s dispatch resolves.
    BatchDone(usize),
    /// Request `req` completes on the fallback path.
    FallbackDone(usize),
    /// Engine `(shard, slot)`'s spawn warmup flush finishes.
    SpawnReady(usize, usize),
    /// A copy of request `req` reaches shard `shard` over its link.
    DeliverReq(usize, usize),
    /// A response copy for request `req` from `shard` reaches the
    /// router; `ok` (success vs nack) and the corruption bit ride the
    /// wire.
    DeliverResp(usize, usize, bool, bool),
    /// A first-response-wins cancellation for `req` reaches `shard`.
    DeliverCancel(usize, usize),
    /// A heartbeat ping reaches shard `shard` (it acks immediately).
    DeliverHb(usize),
    /// A heartbeat ack from shard `shard` reaches the router.
    DeliverAck(usize),
    /// Request `req`'s retransmit timer fires; live only while the
    /// transmission sequence still matches.
    NetTimeout(usize, u32),
    /// Request `req`'s hedge timer fires.
    HedgeFire(usize, u32),
    /// The router's next heartbeat tick toward shard `shard`.
    HbTick(usize),
}

struct Entry {
    at: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// One request's lifecycle state.
struct Request {
    arrival: u64,
    deadline: u64,
    workload: usize,
    tenant: usize,
    key: u64,
    /// The shard whose queue currently holds (or last held) it.
    shard: usize,
    attempts: u32,
    backoff: Backoff,
    admitted: bool,
    completed_at: Option<u64>,
    corrupted: bool,
}

/// Where one engine slot is in the elastic lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineMode {
    /// Holding donated L2 ways and serving.
    Active,
    /// Ways donated, warmup flush in flight; online at `ready_at`
    /// unless the slot goes unhealthy first (spawn rollback).
    Spawning { ready_at: u64 },
    /// Quiescing: no new admissions, the in-flight batch since
    /// `since` decides commit (ways returned) vs rollback.
    Draining { since: u64 },
    /// A plain scalar core: its L2 runs full-width for the cache.
    Parked,
}

/// One engine's simulated state (mirrors the single-pool model).
struct Engine {
    breaker: CircuitBreaker,
    mode: EngineMode,
    busy: bool,
    dead: bool,
    brown_until: u64,
    silent_until: u64,
    fault_epoch: u64,
    silent_epoch: u64,
    dispatches: u64,
    completions: u64,
    failures: u64,
}

impl Engine {
    fn faulty_at(&self, now: u64) -> bool {
        self.dead || now < self.brown_until
    }

    fn silent_at(&self, now: u64) -> bool {
        now < self.silent_until
    }

    fn is_active(&self) -> bool {
        self.mode == EngineMode::Active
    }
}

/// One shard: a pool of engines plus its tenant queues.
struct Shard {
    engines: Vec<Engine>,
    queues: TenantQueues,
    partition_until: u64,
    routed: u64,
    rerouted_in: u64,
    steals_in: u64,
    steals_out: u64,
    batches: u64,
    batched_requests: u64,
    completions: u64,
    failures: u64,
    spawns: u64,
    retires: u64,
    spawn_rollbacks: u64,
    retire_rollbacks: u64,
}

impl Shard {
    fn active_engines(&self) -> usize {
        self.engines.iter().filter(|e| e.is_active()).count()
    }
}

/// One in-flight coalesced dispatch.
struct BatchRec {
    shard: usize,
    engine: usize,
    members: Vec<usize>,
    fault_epoch: u64,
    silent_epoch: u64,
}

/// Per-request transport bookkeeping (net mode only).
#[derive(Debug, Clone, Copy, Default)]
struct NetReqState {
    /// The router accepted a response or failed the request over;
    /// everything that arrives afterwards is stale.
    resolved: bool,
    /// Resolved by accepting a response (vs failing over).
    accepted: bool,
    /// Effective executions: fresh idempotency-table records across
    /// all shards. `execs - accepted` is this request's wasted work.
    execs: u32,
    /// Bit per shard: a copy is queued or executing there. Set on
    /// delivery, cleared when the batch resolves (or a steal/cancel
    /// pulls the copy), so a shard never runs the same request twice.
    queued_mask: u64,
    /// Every shard this request was ever transmitted to.
    sent_mask: u64,
    /// Transmission sequence; timers and hedges carry the sequence
    /// they were armed under and go stale when it moves on.
    xmit_seq: u32,
    retransmits_left: u32,
    /// When the live transmission left the router (RTT sampling).
    sent_at: u64,
    /// The first shard this request was sent to.
    primary: usize,
    hedged: bool,
    /// Valid only when `hedged`.
    hedge_shard: usize,
}

/// The transport layer's run state (`None` = historical
/// instantaneous-reliable dispatch).
struct NetState {
    /// The policy with `rto` resolved (0 ⇒ derived from the profile).
    policy: NetPolicy,
    /// One seeded lossy link per shard.
    links: Vec<Link>,
    /// Per-shard idempotency tables: request id → cached corruption
    /// bit.
    dedup: Vec<DedupTable>,
    /// Windowed heartbeat failure detector over all links.
    detector: Detector,
    /// Sliding RTT window feeding the hedge delay (windowed p99).
    rtt: RttWindow,
    reqs: Vec<NetReqState>,
    /// Admitted requests not yet resolved.
    open: u64,
    /// The last scheduled arrival: heartbeats re-arm only while
    /// traffic is still coming or requests are still open, so the
    /// calendar drains when the run is done.
    last_arrival: u64,
    counters: NetCounters,
}

/// Static per-shard trace categories (shards beyond eight are
/// simulated but not instant-traced — the tracer requires static
/// names).
const SHARD_CATS: [&str; 8] = ["s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"];

/// The cluster simulation: build, optionally attach a tracer, then
/// [`ClusterSim::run`].
pub struct ClusterSim {
    cfg: ClusterConfig,
    profile: ServiceProfile,
    tracer: Option<Tracer>,
    router: Router,
    ladder: Ladder,
    elastic: ElasticController,

    heap: BinaryHeap<Entry>,
    seq: u64,
    requests: Vec<Request>,
    net: Option<NetState>,
    shards: Vec<Shard>,
    storm: Vec<StormEvent>,
    batches: Vec<BatchRec>,
    fallback_free_at: u64,
    now: u64,

    tenant_names: Vec<String>,
    tenant_weights: Vec<u32>,
    min_weight: u32,
    tenant_arrivals: Vec<u64>,
    tenant_admitted: Vec<u64>,
    tenant_shed: Vec<u64>,

    // Cluster tallies.
    admitted: u64,
    shed_capacity: u64,
    shed_infeasible: u64,
    shed_tenant: u64,
    direct_fallback: u64,
    dispatches: u64,
    batched_requests: u64,
    batch_failures: u64,
    request_failures: u64,
    retries: u64,
    failovers: u64,
    steals: u64,
    steal_failovers: u64,
    rerouted: u64,
    completed_eve: u64,
    completed_fallback: u64,
    sdc: u64,
}

impl ClusterSim {
    /// Builds a cluster run: generates the multi-tenant arrival
    /// schedule (hot-key-skew windows folded in), seeds every
    /// per-request backoff stream, and validates the storm against the
    /// topology — all up front, so the run is a pure function of its
    /// arguments.
    ///
    /// # Errors
    ///
    /// Rejects an empty topology, profile, traffic, or tenant mix as
    /// [`ServeError::Config`]; storms addressing silicon the cluster
    /// does not have are [`ServeError::Storm`].
    pub fn new(
        cfg: ClusterConfig,
        profile: ServiceProfile,
        traffic: ClusterTraffic,
        storm: FaultStorm,
    ) -> Result<Self, ServeError> {
        if cfg.shards == 0 || cfg.engines_per_shard == 0 {
            return Err(ServeError::Config(
                "cluster needs at least one shard with one engine".into(),
            ));
        }
        if cfg.vnodes == 0 {
            return Err(ServeError::Config("ring needs at least one vnode".into()));
        }
        if cfg.max_attempts == 0 {
            return Err(ServeError::Config("max_attempts must be at least 1".into()));
        }
        if profile.is_empty() {
            return Err(ServeError::Config(
                "service profile has no workloads".into(),
            ));
        }
        if traffic.requests == 0 {
            return Err(ServeError::Config("traffic must carry requests".into()));
        }
        if traffic.tenants.is_empty() {
            return Err(ServeError::Config(
                "traffic needs at least one tenant".into(),
            ));
        }
        let total_share: f64 = traffic.tenants.iter().map(|t| t.share.max(0.0)).sum();
        if total_share <= 0.0 {
            return Err(ServeError::Config(
                "tenant shares must sum to something positive".into(),
            ));
        }
        if cfg.elastic.enabled {
            let e = cfg.elastic;
            if e.min_engines == 0 {
                return Err(ServeError::Config(
                    "elastic.min_engines must be at least 1".into(),
                ));
            }
            if e.min_engines > cfg.engines_per_shard || cfg.engines_per_shard > e.max_engines {
                return Err(ServeError::Config(format!(
                    "elastic bounds must bracket the base pool: {} <= {} <= {} fails",
                    e.min_engines, cfg.engines_per_shard, e.max_engines
                )));
            }
            if e.scale_down_backlog >= e.scale_up_backlog {
                return Err(ServeError::Config(
                    "elastic scale_down_backlog must sit below scale_up_backlog".into(),
                ));
            }
        }
        if cfg.net.enabled {
            if cfg.shards > 64 {
                return Err(ServeError::Config(
                    "the transport tracks per-shard request copies in a 64-bit mask; \
                     at most 64 shards with net enabled"
                        .into(),
                ));
            }
            cfg.net.validate().map_err(ServeError::Config)?;
        }
        // Storms address slot space so a scripted fault can target a
        // slot the controller has not spawned into yet.
        let total_engines = cfg.shards * cfg.slots_per_shard();
        for (i, e) in storm.events.iter().enumerate() {
            match e.kind {
                StormEventKind::Brownout { .. }
                | StormEventKind::Silent { .. }
                | StormEventKind::Kill
                | StormEventKind::Recover => {
                    if e.engine >= total_engines {
                        return Err(ServeError::Storm(format!(
                            "event {i} targets engine {} of a {total_engines}-engine cluster",
                            e.engine
                        )));
                    }
                }
                StormEventKind::ShardPartition { .. } => {
                    if e.engine >= cfg.shards {
                        return Err(ServeError::Storm(format!(
                            "event {i} partitions shard {} of {}",
                            e.engine, cfg.shards
                        )));
                    }
                }
                StormEventKind::LinkDegrade { .. } => {
                    if !cfg.net.enabled {
                        return Err(ServeError::Storm(format!(
                            "event {i} degrades a link, but the transport layer is disabled"
                        )));
                    }
                    if e.engine >= cfg.shards {
                        return Err(ServeError::Storm(format!(
                            "event {i} degrades the link of shard {} of {}",
                            e.engine, cfg.shards
                        )));
                    }
                }
                StormEventKind::HotKeySkew { .. } => {}
            }
        }
        let router = Router::try_new(cfg.seed, cfg.shards, cfg.vnodes)?;
        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, e) in storm.events.iter().enumerate() {
            heap.push(Entry {
                at: e.at,
                seq,
                ev: Ev::Storm(i),
            });
            seq += 1;
        }
        // Hot-key windows shape key generation; scanning them up front
        // keeps the arrival schedule a pure function of (traffic,
        // storm).
        let hot_windows: Vec<(u64, u64, u64)> = storm
            .events
            .iter()
            .filter_map(|e| match e.kind {
                StormEventKind::HotKeySkew { key, duration } => {
                    Some((e.at, e.at + duration.max(1), key))
                }
                _ => None,
            })
            .collect();
        let schedule = crate::shape::arrivals(&traffic, profile.len(), &hot_windows);
        let mut requests = Vec::with_capacity(traffic.requests);
        for (i, a) in schedule.into_iter().enumerate() {
            let solo = profile
                .eve_service(a.workload, 1)
                .max(profile.fallback_service(a.workload));
            let slack = (solo as f64 * traffic.deadline_slack).round() as u64;
            requests.push(Request {
                arrival: a.at,
                deadline: a.at + slack.max(1),
                workload: a.workload,
                tenant: a.tenant,
                key: a.key,
                shard: router.route(a.key),
                attempts: 0,
                backoff: Backoff::new(cfg.backoff, cfg.seed.wrapping_add(1 + i as u64)),
                admitted: false,
                completed_at: None,
                corrupted: false,
            });
            heap.push(Entry {
                at: a.at,
                seq,
                ev: Ev::Arrival(i),
            });
            seq += 1;
        }
        let weights: Vec<u32> = traffic.tenants.iter().map(|t| t.weight).collect();
        let quantum = profile.mean_eve_cycles();
        let shards = (0..cfg.shards)
            .map(|_| Shard {
                engines: (0..cfg.slots_per_shard())
                    .map(|slot| Engine {
                        breaker: CircuitBreaker::new(cfg.breaker),
                        // Slots beyond the base pool start parked:
                        // scalar cores the controller can spawn into.
                        mode: if slot < cfg.engines_per_shard {
                            EngineMode::Active
                        } else {
                            EngineMode::Parked
                        },
                        busy: false,
                        dead: false,
                        brown_until: 0,
                        silent_until: 0,
                        fault_epoch: 0,
                        silent_epoch: 0,
                        dispatches: 0,
                        completions: 0,
                        failures: 0,
                    })
                    .collect(),
                queues: TenantQueues::new(&weights, quantum),
                partition_until: 0,
                routed: 0,
                rerouted_in: 0,
                steals_in: 0,
                steals_out: 0,
                batches: 0,
                batched_requests: 0,
                completions: 0,
                failures: 0,
                spawns: 0,
                retires: 0,
                spawn_rollbacks: 0,
                retire_rollbacks: 0,
            })
            .collect();
        let net = if cfg.net.enabled {
            let mut policy = cfg.net;
            if policy.rto == 0 {
                // Derive the retransmit timeout from the topology: a
                // round trip at worst-case link delay plus queueing
                // headroom in units of the mean service time.
                policy.rto = profile.rto_hint(policy.base_delay, policy.jitter);
            }
            policy.rto = policy.rto.max(1);
            let last_arrival = requests.iter().map(|r| r.arrival).max().unwrap_or(0);
            // Staggered heartbeat phases so N links never ping in the
            // same cycle.
            let every = policy.heartbeat_every.max(1);
            for s in 0..cfg.shards {
                heap.push(Entry {
                    at: (s as u64 * every) / cfg.shards as u64,
                    seq,
                    ev: Ev::HbTick(s),
                });
                seq += 1;
            }
            Some(NetState {
                links: (0..cfg.shards).map(|s| Link::new(cfg.seed, s)).collect(),
                dedup: vec![DedupTable::new(); cfg.shards],
                detector: Detector::new(cfg.shards, every, policy.suspect_misses),
                rtt: RttWindow::new(64),
                reqs: vec![NetReqState::default(); requests.len()],
                open: 0,
                last_arrival,
                counters: NetCounters::default(),
                policy,
            })
        } else {
            None
        };
        let tenant_count = traffic.tenants.len();
        Ok(Self {
            ladder: Ladder::new(cfg.ladder),
            elastic: ElasticController::new(cfg.elastic, cfg.shards),
            min_weight: weights.iter().copied().min().unwrap_or(1),
            tenant_names: traffic.tenants.iter().map(|t| t.name.clone()).collect(),
            tenant_weights: weights,
            tenant_arrivals: vec![0; tenant_count],
            tenant_admitted: vec![0; tenant_count],
            tenant_shed: vec![0; tenant_count],
            cfg,
            profile,
            tracer: None,
            router,
            heap,
            seq,
            requests,
            net,
            shards,
            storm: storm.events,
            batches: Vec::new(),
            fallback_free_at: 0,
            now: 0,
            admitted: 0,
            shed_capacity: 0,
            shed_infeasible: 0,
            shed_tenant: 0,
            direct_fallback: 0,
            dispatches: 0,
            batched_requests: 0,
            batch_failures: 0,
            request_failures: 0,
            retries: 0,
            failovers: 0,
            steals: 0,
            steal_failovers: 0,
            rerouted: 0,
            completed_eve: 0,
            completed_fallback: 0,
            sdc: 0,
        })
    }

    /// Attaches a tracer: the run emits `cluster`-track instants
    /// (routing, steals, ladder transitions) and mirrors its tallies
    /// into the counter registry for the auditor.
    #[must_use]
    pub fn with_tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = Some(tracer.clone());
        self
    }

    fn push(&mut self, at: u64, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, ev });
    }

    fn instant(&self, cat: &'static str, name: &'static str, at: u64) {
        if let Some(t) = &self.tracer {
            t.instant("cluster", cat, name, at);
        }
    }

    fn count(&self, name: &str, amount: u64) {
        if let Some(t) = &self.tracer {
            t.count(name, amount);
        }
    }

    /// Whether `shard` can accept a dispatch right now: reachable (not
    /// partitioned in the legacy model, not heartbeat-suspected in net
    /// mode), and at least one *active* engine's breaker is not open
    /// (spawning, draining, and parked slots are not admission
    /// channels).
    fn shard_available(&mut self, s: usize) -> bool {
        let now = self.now;
        let (blocked, newly_suspect) = if let Some(net) = &mut self.net {
            // Lazy detection: suspicion is evaluated when routing asks,
            // from the last heartbeat ack's age.
            let newly = net.detector.probe(now, s).is_some();
            (net.detector.suspected(s), newly)
        } else {
            (now < self.shards[s].partition_until, false)
        };
        if newly_suspect && s < SHARD_CATS.len() {
            self.instant(SHARD_CATS[s], "suspect", now);
        }
        if blocked {
            return false;
        }
        self.shards[s]
            .engines
            .iter_mut()
            .any(|e| e.is_active() && e.breaker.state_at(now) != BreakerState::Open)
    }

    fn availability_mask(&mut self) -> Vec<bool> {
        (0..self.cfg.shards)
            .map(|s| self.shard_available(s))
            .collect()
    }

    /// Non-open *active* engine count in `shard` (its serving
    /// channels).
    fn shard_channels(&mut self, s: usize) -> usize {
        let now = self.now;
        self.shards[s]
            .engines
            .iter_mut()
            .filter(|e| e.is_active())
            .map(|e| e.breaker.state_at(now))
            .filter(|s| *s != BreakerState::Open)
            .count()
    }

    /// The admission estimator's snapshot of one shard, priced for
    /// `workload`: queued work priced per-request (WDRR order does not
    /// change the total), in-flight engines charged their residual.
    fn shard_view(&mut self, s: usize, workload: usize) -> AdmissionView {
        let channels = self.shard_channels(s).max(1);
        let requests = &self.requests;
        let profile = &self.profile;
        let shard = &self.shards[s];
        let queued_cost = shard
            .queues
            .iter()
            .map(|(_, r)| profile.eve_service(requests[r].workload, channels))
            .sum();
        AdmissionView {
            queued: shard.queues.len(),
            queued_cost,
            inflight: shard.engines.iter().filter(|e| e.busy).count(),
            channels,
            mean_service: profile.mean_eve_cycles(),
            service_estimate: profile.eve_service(workload, channels),
        }
    }

    /// Scalar-side cache-pressure multiplier on the O3+DV path: every
    /// active engine holds donated L2 ways on its core, so the more of
    /// the fleet is spawned, the slower scalar working sets run
    /// (saturating at the measured [`ServiceProfile::scalar_slowdown`]
    /// when every slot is an engine). Exactly 1.0 with the controller
    /// disabled, so static runs price the fallback as they always did.
    fn fallback_mult(&self) -> f64 {
        if !self.cfg.elastic.enabled {
            return 1.0;
        }
        let slots = (self.cfg.shards * self.cfg.slots_per_shard()).max(1);
        let active: usize = self.shards.iter().map(Shard::active_engines).sum();
        1.0 + (active as f64 / slots as f64) * (self.profile.scalar_slowdown - 1.0)
    }

    /// Fallback service time of `workload` under the current engine
    /// footprint's cache pressure.
    fn fallback_cost(&self, workload: usize) -> u64 {
        let base = self.profile.fallback_service(workload);
        ((base as f64) * self.fallback_mult()).round().max(1.0) as u64
    }

    /// The O3+DV path's view: one FIFO channel plus its current
    /// backlog, priced under the current scalar-interference level.
    fn fallback_view(&self, workload: usize) -> AdmissionView {
        let mult = self.fallback_mult();
        AdmissionView {
            queued: 0,
            queued_cost: self.fallback_free_at.saturating_sub(self.now),
            inflight: 0,
            channels: 1,
            mean_service: ((self.profile.mean_fallback_cycles() as f64) * mult)
                .round()
                .max(1.0) as u64,
            service_estimate: self.fallback_cost(workload),
        }
    }

    /// Runs the event loop to quiescence and produces the report.
    /// Retries are bounded, batches and the fallback always complete,
    /// and the post-drain sweep fails over anything still queued on
    /// unroutable shards, so the loop terminates.
    #[must_use]
    pub fn run(mut self) -> ClusterReport {
        loop {
            while let Some(Entry { at, ev, .. }) = self.heap.pop() {
                debug_assert!(at >= self.now, "time runs forward");
                self.now = at;
                self.handle(ev);
            }
            // Anything still queued sat on a shard nobody could steal
            // for (stealing disabled, or every shard unroutable): the
            // fallback is the terminal safety net.
            let mut leftover = Vec::new();
            for s in 0..self.cfg.shards {
                leftover.extend(
                    self.shards[s]
                        .queues
                        .drain_upto(usize::MAX)
                        .into_iter()
                        .map(|(_, r)| r),
                );
            }
            if leftover.is_empty() {
                break;
            }
            for r in leftover {
                self.failover(r);
            }
        }
        self.report()
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Storm(i) => self.on_storm(i),
            Ev::Arrival(r) => self.on_arrival(r),
            Ev::Retry(r) => self.on_retry(r),
            Ev::BatchDone(b) => self.on_batch_done(b),
            Ev::FallbackDone(r) => {
                self.requests[r].completed_at = Some(self.now);
                self.completed_fallback += 1;
                self.instant("serve", "complete_fallback", self.now);
            }
            Ev::SpawnReady(s, e) => self.on_spawn_ready(s, e),
            Ev::DeliverReq(r, s) => self.on_deliver_req(r, s),
            Ev::DeliverResp(r, s, ok, corrupt) => self.on_deliver_resp(r, s, ok, corrupt),
            Ev::DeliverCancel(r, s) => self.on_deliver_cancel(r, s),
            Ev::DeliverHb(s) => self.on_deliver_hb(s),
            Ev::DeliverAck(s) => self.on_deliver_ack(s),
            Ev::NetTimeout(r, seq) => self.on_net_timeout(r, seq),
            Ev::HedgeFire(r, seq) => self.on_hedge_fire(r, seq),
            Ev::HbTick(s) => self.on_hb_tick(s),
        }
        // Every state change re-evaluates pressure, lets the elastic
        // controller repartition, lets idle shards steal, and pumps
        // whatever became placeable.
        self.evaluate_ladder();
        self.evaluate_elastic();
        self.steal_pass();
        self.pump_all();
    }

    fn on_storm(&mut self, i: usize) {
        let ev = self.storm[i];
        let now = self.now;
        match ev.kind {
            StormEventKind::ShardPartition { duration } => {
                let until = now + duration.max(1);
                if let Some(net) = &mut self.net {
                    // With the transport on, a partition is not a
                    // special mechanism: it is 100% loss on the link.
                    // The shard's engines stay healthy and keep
                    // draining their queue — their responses just
                    // never get out, and the heartbeat detector
                    // discovers the silence.
                    net.links[ev.engine].degrade(until, 1.0);
                } else {
                    let shard = &mut self.shards[ev.engine];
                    shard.partition_until = shard.partition_until.max(until);
                    // The partition severs in-flight work too: epoch
                    // bumps turn every outstanding batch into a
                    // detected failure.
                    for e in &mut shard.engines {
                        e.fault_epoch += 1;
                    }
                }
                if ev.engine < SHARD_CATS.len() {
                    self.instant(SHARD_CATS[ev.engine], "partition", now);
                }
            }
            StormEventKind::LinkDegrade { loss_pct, duration } => {
                // Build-time validation guarantees the transport is on.
                if let Some(net) = &mut self.net {
                    net.links[ev.engine]
                        .degrade(now + duration.max(1), f64::from(loss_pct.min(100)) / 100.0);
                }
                if ev.engine < SHARD_CATS.len() {
                    self.instant(SHARD_CATS[ev.engine], "link_degrade", now);
                }
            }
            StormEventKind::HotKeySkew { .. } => {
                // Traffic shaping only; keys were folded in at build
                // time. The instant marks the window for trace readers.
                self.instant("storm", "hot_key", now);
            }
            kind => {
                let slots = self.cfg.slots_per_shard();
                let s = ev.engine / slots;
                let e = &mut self.shards[s].engines[ev.engine % slots];
                match kind {
                    StormEventKind::Brownout { duration } => {
                        e.brown_until = e.brown_until.max(now + duration.max(1));
                        e.fault_epoch += 1;
                    }
                    StormEventKind::Silent { duration } => {
                        e.silent_until = e.silent_until.max(now + duration.max(1));
                        e.silent_epoch += 1;
                    }
                    StormEventKind::Kill => {
                        if !e.dead {
                            e.dead = true;
                            e.fault_epoch += 1;
                        }
                    }
                    StormEventKind::Recover => {
                        e.dead = false;
                        e.brown_until = now;
                        e.silent_until = now;
                        e.fault_epoch += 1;
                    }
                    _ => unreachable!("cluster-scoped kinds handled above"),
                }
            }
        }
    }

    fn on_arrival(&mut self, r: usize) {
        let now = self.now;
        let tenant = self.requests[r].tenant;
        self.tenant_arrivals[tenant] += 1;
        self.instant("serve", "arrive", now);
        // Rung 2: the lowest-weight tenant class is refused at the
        // door while the ladder holds there or below.
        if self.ladder.level() >= ServiceLevel::ShedLowWeight
            && self.tenant_weights[tenant] == self.min_weight
        {
            self.shed_tenant += 1;
            self.tenant_shed[tenant] += 1;
            self.instant("serve", "shed_tenant", now);
            return;
        }
        let (key, workload, deadline) = {
            let req = &self.requests[r];
            (req.key, req.workload, req.deadline)
        };
        let home = self.router.route(key);
        let dest = if self.ladder.level() == ServiceLevel::FallbackOnly {
            None
        } else {
            let avail = self.availability_mask();
            self.router.route_healthy(key, |s| avail[s])
        };
        match dest {
            Some(s) => {
                let view = self.shard_view(s, workload);
                match admit(&self.cfg.admission, now, deadline, &view) {
                    Ok(()) => {
                        self.admitted += 1;
                        self.tenant_admitted[tenant] += 1;
                        self.requests[r].admitted = true;
                        self.shards[home].routed += 1;
                        if s != home {
                            self.rerouted += 1;
                            self.shards[s].rerouted_in += 1;
                            self.instant("serve", "reroute", now);
                        }
                        self.requests[r].shard = s;
                        if self.net.is_some() {
                            self.net_open_request(r, s);
                        } else {
                            self.shards[s].queues.push(tenant, r);
                        }
                        self.instant("serve", "admit", now);
                    }
                    Err(reason) => self.shed(r, reason),
                }
            }
            None => {
                // No routable shard (or a fallback-only brownout):
                // price against the O3+DV path directly.
                let view = self.fallback_view(workload);
                match admit(&self.cfg.admission, now, deadline, &view) {
                    Ok(()) => {
                        self.admitted += 1;
                        self.tenant_admitted[tenant] += 1;
                        self.requests[r].admitted = true;
                        self.direct_fallback += 1;
                        if let Some(net) = &mut self.net {
                            // Opened and immediately resolved by the
                            // failover below; the open/resolve pairing
                            // keeps the conservation arithmetic exact.
                            net.open += 1;
                        }
                        self.failover(r);
                    }
                    Err(reason) => self.shed(r, reason),
                }
            }
        }
    }

    fn shed(&mut self, r: usize, reason: ShedReason) {
        let tenant = self.requests[r].tenant;
        self.tenant_shed[tenant] += 1;
        match reason {
            ShedReason::Capacity => {
                self.shed_capacity += 1;
                self.instant("serve", "shed_capacity", self.now);
            }
            ShedReason::Infeasible => {
                self.shed_infeasible += 1;
                self.instant("serve", "shed_infeasible", self.now);
            }
        }
    }

    fn on_retry(&mut self, r: usize) {
        if let Some(net) = &mut self.net {
            // A duplicate nack can race the retry against a failover;
            // a resolved request never re-enters the cluster.
            if net.reqs[r].resolved {
                net.counters.stale_drops += 1;
                return;
            }
        }
        self.instant("serve", "retry_due", self.now);
        let avail = self.availability_mask();
        let (cur, key, tenant) = {
            let req = &self.requests[r];
            (req.shard, req.key, req.tenant)
        };
        let dest = if avail[cur] {
            Some(cur)
        } else {
            self.router.route_healthy(key, |s| avail[s])
        };
        match dest {
            Some(s) => {
                self.requests[r].shard = s;
                if self.net.is_some() {
                    self.net_send_req(r, s);
                } else {
                    self.shards[s].queues.push(tenant, r);
                }
            }
            None => self.failover(r),
        }
    }

    fn pump_all(&mut self) {
        // The bottom ladder rung runs nothing on engines: queues drain
        // straight to the fallback until the ladder climbs back.
        if self.ladder.level() == ServiceLevel::FallbackOnly {
            for s in 0..self.cfg.shards {
                let drained: Vec<usize> = self.shards[s]
                    .queues
                    .drain_upto(usize::MAX)
                    .into_iter()
                    .map(|(_, r)| r)
                    .collect();
                for r in drained {
                    self.failover(r);
                }
            }
            return;
        }
        for s in 0..self.cfg.shards {
            self.pump_shard(s);
        }
    }

    /// Drains one shard's queues onto its free engines: WDRR picks the
    /// next head, then same-tenant same-kernel riders coalesce into the
    /// batch (the ceiling doubles once the ladder leaves full service —
    /// trading tail latency for throughput is rung 1's whole point).
    fn pump_shard(&mut self, s: usize) {
        let now = self.now;
        if now < self.shards[s].partition_until {
            return;
        }
        loop {
            if self.shards[s].queues.is_empty() {
                return;
            }
            let mut pick = None;
            for (i, e) in self.shards[s].engines.iter_mut().enumerate() {
                if !e.is_active() || e.busy || !e.breaker.allows(now) {
                    continue;
                }
                match (e.breaker.state_at(now), pick) {
                    (BreakerState::Closed, _) => {
                        pick = Some(i);
                        break;
                    }
                    (BreakerState::HalfOpen, None) => pick = Some(i),
                    _ => {}
                }
            }
            let Some(eng) = pick else { return };
            let channels = self.shard_channels(s).max(1);
            let requests = &self.requests;
            let profile = &self.profile;
            let Some((tenant, head)) = self.shards[s]
                .queues
                .pop_next(|r| profile.eve_service(requests[r].workload, channels))
            else {
                return;
            };
            let workload = requests[head].workload;
            let max_batch = if self.ladder.level() >= ServiceLevel::BatchOnly {
                self.cfg.batch.max_batch * 2
            } else {
                self.cfg.batch.max_batch
            };
            let requests = &self.requests;
            let riders =
                self.shards[s]
                    .queues
                    .extract_matching(tenant, max_batch.saturating_sub(1), |r| {
                        requests[r].workload == workload
                    });
            let mut members = vec![head];
            members.extend(riders);
            self.dispatch_batch(s, eng, workload, members);
        }
    }

    fn dispatch_batch(&mut self, s: usize, eng: usize, workload: usize, members: Vec<usize>) {
        let now = self.now;
        let k = members.len();
        let busy_after = self.shards[s].engines.iter().filter(|e| e.busy).count() + 1;
        let service = if self.shards[s].engines[eng].faulty_at(now) {
            self.cfg.detect_latency.max(1)
        } else {
            let solo = self.profile.eve_service(workload, busy_after);
            self.cfg.batch.batch_cycles(solo, k)
        };
        self.dispatches += 1;
        self.batched_requests += k as u64;
        self.ladder.observe_dispatch(now);
        for &m in &members {
            self.requests[m].attempts += 1;
        }
        let shard = &mut self.shards[s];
        shard.batches += 1;
        shard.batched_requests += k as u64;
        let e = &mut shard.engines[eng];
        e.breaker.on_dispatch(now);
        e.busy = true;
        e.dispatches += 1;
        let (fault_epoch, silent_epoch) = (e.fault_epoch, e.silent_epoch);
        let b = self.batches.len();
        self.batches.push(BatchRec {
            shard: s,
            engine: eng,
            members,
            fault_epoch,
            silent_epoch,
        });
        if s < SHARD_CATS.len() {
            self.instant(SHARD_CATS[s], "batch", now);
        }
        self.push(now + service, Ev::BatchDone(b));
    }

    fn on_batch_done(&mut self, b: usize) {
        let now = self.now;
        let (s, eng) = (self.batches[b].shard, self.batches[b].engine);
        let members = std::mem::take(&mut self.batches[b].members);
        let e = &mut self.shards[s].engines[eng];
        e.busy = false;
        let fault_overlap = self.batches[b].fault_epoch != e.fault_epoch || e.faulty_at(now);
        let silent_overlap = self.batches[b].silent_epoch != e.silent_epoch || e.silent_at(now);
        let failed = fault_overlap || (silent_overlap && self.cfg.checked);
        if failed {
            e.failures += 1;
            e.breaker.on_failure(now);
            self.batch_failures += 1;
            self.shards[s].failures += 1;
            self.request_failures += members.len() as u64;
            self.ladder.observe_failure(now);
            if self.net.is_some() {
                // Nack every member over the link: the router owns the
                // retry decision. The queued bit clears so a
                // retransmitted copy can legitimately land here again.
                for &m in &members {
                    if let Some(net) = &mut self.net {
                        net.reqs[m].queued_mask &= !(1u64 << s);
                    }
                    self.net_send_resp(m, s, false, false);
                }
            } else {
                for &m in &members {
                    self.retry_or_failover(m);
                }
            }
        } else {
            e.breaker.on_success(now);
            e.completions += 1;
            self.shards[s].completions += members.len() as u64;
            let leak = silent_overlap && !self.cfg.checked;
            if self.net.is_some() {
                // Effective execution: the idempotency table records it
                // (result and corruption bit become the cached answer)
                // and the response rides the link. Acceptance — and the
                // completion/SDC ledger — happens at the router, once,
                // whichever copy wins.
                for &m in &members {
                    if let Some(net) = &mut self.net {
                        net.reqs[m].queued_mask &= !(1u64 << s);
                        if net.dedup[s].record(m as u64, leak) {
                            net.reqs[m].execs += 1;
                        } else {
                            // Structurally unreachable (the queued bit
                            // blocks same-shard re-entry); counted so
                            // the auditor can prove it stayed zero.
                            net.counters.double_applied += 1;
                        }
                    }
                    self.net_send_resp(m, s, true, leak);
                }
                self.instant("serve", "executed", now);
            } else {
                self.completed_eve += members.len() as u64;
                for &m in &members {
                    self.requests[m].completed_at = Some(now);
                    if leak {
                        self.sdc += 1;
                        self.requests[m].corrupted = true;
                        self.instant("serve", "sdc", now);
                    }
                }
                self.instant("serve", "complete", now);
            }
        }
        self.resolve_drain(s, eng, failed);
    }

    /// A draining engine's in-flight batch just resolved: the drain is
    /// over either way (that batch was the only work it still held, so
    /// nothing was dropped and nothing can double-run). Pressure that
    /// returned mid-drain aborts the retire — the engine snaps back to
    /// active with its ways intact. Otherwise the retire commits and
    /// the ways return to the cache; if the drain *failed* because the
    /// engine went unhealthy, its members have already failed over via
    /// the ring-walk above, so committing is the rollback-safe choice.
    fn resolve_drain(&mut self, s: usize, eng: usize, failed: bool) {
        let EngineMode::Draining { since } = self.shards[s].engines[eng].mode else {
            return;
        };
        let now = self.now;
        self.elastic.add_drain_cycles(now.saturating_sub(since));
        let capacity = self.cfg.admission.queue_capacity.max(1);
        let backlog = self.shards[s].queues.len() as f64 / capacity as f64;
        let pressure_back = !failed && backlog >= self.cfg.elastic.scale_up_backlog;
        if pressure_back {
            self.shards[s].engines[eng].mode = EngineMode::Active;
            self.shards[s].retire_rollbacks += 1;
            self.record_elastic(s, ElasticEventKind::RetireRollback);
        } else {
            self.shards[s].engines[eng].mode = EngineMode::Parked;
            self.shards[s].retires += 1;
            self.record_elastic(s, ElasticEventKind::RetireCommit);
        }
    }

    fn retry_or_failover(&mut self, r: usize) {
        let now = self.now;
        let (attempts, deadline, workload) = {
            let req = &self.requests[r];
            (req.attempts, req.deadline, req.workload)
        };
        // Rung 1 and below disable retries: a struggling cluster stops
        // feeding failed work back into itself.
        if self.ladder.level() == ServiceLevel::Full && attempts < self.cfg.max_attempts {
            let delay = self.requests[r].backoff.delay(attempts - 1).max(1);
            let avail = self.availability_mask();
            let cur = self.requests[r].shard;
            let dest = if avail[cur] {
                Some(cur)
            } else {
                self.router
                    .route_healthy(self.requests[r].key, |s| avail[s])
            };
            if let Some(s) = dest {
                let view = self.shard_view(s, workload);
                let eta = now
                    .saturating_add(delay)
                    .saturating_add(estimated_wait(&view))
                    .saturating_add(view.service_estimate);
                if eta <= deadline {
                    self.retries += 1;
                    self.requests[r].shard = s;
                    if let Some(net) = &mut self.net {
                        // Supersede the old transmission: its pending
                        // timeout and hedge no longer own this
                        // request (the Retry event does).
                        net.reqs[r].xmit_seq += 1;
                    }
                    self.instant("serve", "retry", now);
                    self.push(now + delay, Ev::Retry(r));
                    return;
                }
            }
        }
        self.failover(r);
    }

    fn failover(&mut self, r: usize) {
        let now = self.now;
        if let Some(net) = &mut self.net {
            let req = &mut net.reqs[r];
            if req.resolved {
                // A stale copy of a request that already resolved
                // (accepted elsewhere, or already failed over).
                net.counters.stale_drops += 1;
                return;
            }
            req.resolved = true;
            req.xmit_seq += 1;
            net.open -= 1;
        }
        self.failovers += 1;
        self.instant("serve", "failover", now);
        let start = self.fallback_free_at.max(now);
        let done = start + self.fallback_cost(self.requests[r].workload);
        self.fallback_free_at = done;
        self.push(done, Ev::FallbackDone(r));
    }

    /// One steal pass: the emptiest eligible thief (available, a free
    /// engine, no backlog of its own) takes up to `max_per_pass`
    /// requests from the most-backlogged unroutable victim, re-pricing
    /// each against its own queue — stolen work that can no longer make
    /// its deadline goes straight to the fallback instead of dying in a
    /// second queue.
    fn steal_pass(&mut self) {
        if !self.cfg.steal.enabled || self.ladder.level() == ServiceLevel::FallbackOnly {
            return;
        }
        let now = self.now;
        let avail = self.availability_mask();
        let mut victim: Option<(usize, usize)> = None; // (queued, shard)
        for (s, open) in avail.iter().enumerate() {
            let queued = self.shards[s].queues.len();
            if !open && queued > 0 && victim.is_none_or(|(q, _)| queued > q) {
                victim = Some((queued, s));
            }
        }
        let Some((_, v)) = victim else { return };
        let thief = (0..self.cfg.shards).find(|&s| {
            avail[s]
                && self.shards[s].queues.is_empty()
                && self.shards[s]
                    .engines
                    .iter_mut()
                    .any(|e| e.is_active() && !e.busy && e.breaker.allows(now))
        });
        let Some(t) = thief else { return };
        let stolen = self.shards[v]
            .queues
            .drain_upto(self.cfg.steal.max_per_pass);
        for (tenant, r) in stolen {
            self.steals += 1;
            self.shards[v].steals_out += 1;
            if let Some(net) = &mut self.net {
                // The copy left the victim's queue with the thief.
                net.reqs[r].queued_mask &= !(1u64 << v);
            }
            let (workload, deadline) = {
                let req = &self.requests[r];
                (req.workload, req.deadline)
            };
            let view = self.shard_view(t, workload);
            let eta = now
                .saturating_add(estimated_wait(&view))
                .saturating_add(view.service_estimate);
            if let Some(tr) = &self.tracer {
                tr.instant_arg("cluster", "steal", "steal", now, ("from", v as u64));
            }
            if eta <= deadline {
                self.shards[t].steals_in += 1;
                if self.net.is_some() {
                    // Through the landing logic, not a blind push: the
                    // thief may already hold this request's answer in
                    // its idempotency cache.
                    self.net_enqueue(r, t);
                } else {
                    self.requests[r].shard = t;
                    self.shards[t].queues.push(tenant, r);
                }
            } else {
                self.steal_failovers += 1;
                self.failover(r);
            }
        }
    }

    fn evaluate_ladder(&mut self) {
        let now = self.now;
        let capacity = (self.cfg.shards * self.cfg.admission.queue_capacity).max(1);
        let queued: usize = self.shards.iter().map(|s| s.queues.len()).sum();
        let avail = self.availability_mask();
        let down = avail.iter().filter(|a| !**a).count();
        let backlog = queued as f64 / capacity as f64;
        let unavailable = down as f64 / self.cfg.shards as f64;
        if let Some(ev) = self.ladder.evaluate(now, backlog, unavailable) {
            self.instant("ladder", ev.to.as_str(), now);
        }
    }

    /// Records one reconfiguration event: the controller keeps the
    /// ledger (tallies, dwell stamps, thrash window) and the trace gets
    /// a per-shard instant. Call *after* the mode mutation so
    /// `active_after` reflects the post-event partition.
    fn record_elastic(&mut self, s: usize, kind: ElasticEventKind) {
        let event = ElasticEvent {
            at: self.now,
            shard: s,
            kind,
            active_after: self.shards[s].active_engines(),
        };
        self.elastic.record(event);
        if s < SHARD_CATS.len() {
            self.instant(SHARD_CATS[s], kind.as_str(), self.now);
        }
    }

    /// One controller pass: each unpartitioned shard's windowed
    /// pressure is read and at most one reconfiguration per shard is
    /// started, subject to the controller's dwell hysteresis and the
    /// cluster-wide thrash budget. The bottom ladder rung suppresses
    /// the controller entirely — a cluster serving from the fallback
    /// should not be donating more L2 ways to engines.
    fn evaluate_elastic(&mut self) {
        if !self.cfg.elastic.enabled || self.ladder.level() == ServiceLevel::FallbackOnly {
            return;
        }
        let now = self.now;
        let capacity = self.cfg.admission.queue_capacity.max(1);
        for s in 0..self.cfg.shards {
            if now < self.shards[s].partition_until {
                continue;
            }
            let shard = &self.shards[s];
            let signal = ShardSignal {
                backlog: shard.queues.len() as f64 / capacity as f64,
                active: shard.active_engines(),
                spawning: shard
                    .engines
                    .iter()
                    .filter(|e| matches!(e.mode, EngineMode::Spawning { .. }))
                    .count(),
                draining: shard
                    .engines
                    .iter()
                    .filter(|e| matches!(e.mode, EngineMode::Draining { .. }))
                    .count(),
            };
            match self.elastic.decide(now, s, &signal) {
                Some(ElasticAction::Spawn) => self.start_spawn(s),
                Some(ElasticAction::Retire) => self.start_retire(s),
                None => {}
            }
        }
    }

    /// Begins a spawn on `s`: the first parked slot that is healthy
    /// enough ([`spawn_target_ok`]) donates its L2 ways and starts the
    /// measured warmup flush; the engine is only real at `ready_at`.
    /// No healthy slot → no action (and no thrash charge).
    fn start_spawn(&mut self, s: usize) {
        let now = self.now;
        let mut target = None;
        for i in 0..self.shards[s].engines.len() {
            let e = &mut self.shards[s].engines[i];
            if e.mode != EngineMode::Parked {
                continue;
            }
            let faulty = e.faulty_at(now);
            if spawn_target_ok(&mut e.breaker, faulty, now) {
                target = Some(i);
                break;
            }
        }
        let Some(i) = target else { return };
        let ready_at = now + self.profile.spawn_flush_cycles.max(1);
        self.shards[s].engines[i].mode = EngineMode::Spawning { ready_at };
        self.record_elastic(s, ElasticEventKind::SpawnStart);
        self.push(ready_at, Ev::SpawnReady(s, i));
    }

    /// Begins a retire on `s`, from the top slot down so the base pool
    /// is the last to go. An idle engine has nothing in flight: its
    /// ways return immediately (start and commit coincide). A busy
    /// engine quiesces instead — it stops admitting work and its
    /// in-flight batch decides the drain in [`ClusterSim::resolve_drain`].
    fn start_retire(&mut self, s: usize) {
        let now = self.now;
        let engines = &self.shards[s].engines;
        let pick = |busy: bool| {
            (0..engines.len())
                .rev()
                .find(|&i| engines[i].is_active() && engines[i].busy == busy)
        };
        if let Some(i) = pick(false) {
            self.shards[s].engines[i].mode = EngineMode::Parked;
            self.record_elastic(s, ElasticEventKind::RetireStart);
            self.shards[s].retires += 1;
            self.record_elastic(s, ElasticEventKind::RetireCommit);
        } else if let Some(i) = pick(true) {
            self.shards[s].engines[i].mode = EngineMode::Draining { since: now };
            self.record_elastic(s, ElasticEventKind::RetireStart);
        }
    }

    /// The warmup flush finished: if the slot is still healthy the
    /// engine comes online; if it went unhealthy mid-warmup the spawn
    /// rolls back — ways return to the cache, the slot re-parks, and
    /// traffic keeps failing over via the existing ring-walk.
    fn on_spawn_ready(&mut self, s: usize, i: usize) {
        let now = self.now;
        let ok = {
            let e = &mut self.shards[s].engines[i];
            let EngineMode::Spawning { ready_at } = e.mode else {
                return;
            };
            debug_assert_eq!(ready_at, now, "spawn readiness fires on schedule");
            let faulty = e.faulty_at(now);
            spawn_target_ok(&mut e.breaker, faulty, now)
        };
        if ok {
            self.shards[s].engines[i].mode = EngineMode::Active;
            self.shards[s].spawns += 1;
            self.record_elastic(s, ElasticEventKind::SpawnCommit);
        } else {
            self.shards[s].engines[i].mode = EngineMode::Parked;
            self.shards[s].spawn_rollbacks += 1;
            self.record_elastic(s, ElasticEventKind::SpawnRollback);
        }
    }

    // ---- The lossy transport (net mode only) ------------------------
    //
    // Every router↔shard exchange below is a message on a seeded lossy
    // link, scheduled through the same calendar as everything else.
    // Handlers are no-ops when the transport is disabled, so the
    // historical instantaneous-dispatch schedule is untouched byte for
    // byte.

    /// Transmits one message over `shard`'s link, returning the
    /// scheduled delivery cycles (empty = every copy was lost).
    fn net_transmit(&mut self, shard: usize, class: MsgClass) -> Vec<u64> {
        let now = self.now;
        let Some(net) = &mut self.net else {
            return Vec::new();
        };
        let policy = net.policy;
        net.links[shard].transmit(now, class, &policy)
    }

    /// Opens request `r` on the transport: first transmission toward
    /// `dest` with the full retransmit budget, plus a hedge timer once
    /// the RTT estimator is warm enough to quote a p99.
    fn net_open_request(&mut self, r: usize, dest: usize) {
        let now = self.now;
        let hedge = {
            let Some(net) = &mut self.net else { return };
            net.open += 1;
            let policy = net.policy;
            let req = &mut net.reqs[r];
            req.primary = dest;
            req.retransmits_left = policy.max_retransmits;
            if policy.hedge {
                net.rtt
                    .hedge_delay(policy.hedge_min_samples, policy.hedge_floor)
            } else {
                None
            }
        };
        self.net_send_req(r, dest);
        if let Some(d) = hedge {
            // Sequence 1 is the first transmission; a retransmit or
            // retry supersedes the hedge along with the timeout.
            self.push(now + d, Ev::HedgeFire(r, 1));
        }
    }

    /// Sends (or retransmits) request `r` to `dest`: bumps the
    /// transmission sequence — invalidating older timers and hedges —
    /// transmits the copies, and arms a fresh retransmit timeout.
    fn net_send_req(&mut self, r: usize, dest: usize) {
        let now = self.now;
        let (seq, rto) = {
            let Some(net) = &mut self.net else { return };
            let req = &mut net.reqs[r];
            req.xmit_seq += 1;
            req.sent_at = now;
            req.sent_mask |= 1u64 << dest;
            (req.xmit_seq, net.policy.rto)
        };
        for at in self.net_transmit(dest, MsgClass::Req) {
            self.push(at, Ev::DeliverReq(r, dest));
        }
        self.push(now + rto, Ev::NetTimeout(r, seq));
    }

    /// Shard `s` answers request `r` over its link: `ok` for a
    /// successful execution (fresh or cached), false for a nack.
    fn net_send_resp(&mut self, r: usize, s: usize, ok: bool, corrupt: bool) {
        for at in self.net_transmit(s, MsgClass::Resp) {
            self.push(at, Ev::DeliverResp(r, s, ok, corrupt));
        }
    }

    /// A request copy reached shard `s`'s side of the link.
    fn on_deliver_req(&mut self, r: usize, s: usize) {
        if let Some(net) = &mut self.net {
            net.links[s].on_delivered(MsgClass::Req);
        } else {
            return;
        }
        self.net_enqueue(r, s);
    }

    /// Lands request `r` at shard `s`: a request this shard already
    /// executed answers from the idempotency cache, a copy already
    /// queued or executing here is suppressed, anything else enters
    /// the tenant queue. This is the exactly-once half the shard owns —
    /// at-least-once delivery upstream, at-most-one effect here.
    fn net_enqueue(&mut self, r: usize, s: usize) {
        enum Landing {
            Queue,
            Cached(bool),
            Suppress,
        }
        let landing = {
            let Some(net) = &mut self.net else { return };
            if let Some(corrupt) = net.dedup[s].lookup(r as u64) {
                net.counters.dedup_hits += 1;
                Landing::Cached(corrupt)
            } else if net.reqs[r].queued_mask & (1u64 << s) != 0 {
                net.counters.dup_suppressed += 1;
                Landing::Suppress
            } else {
                net.reqs[r].queued_mask |= 1u64 << s;
                Landing::Queue
            }
        };
        match landing {
            Landing::Queue => {
                let tenant = self.requests[r].tenant;
                self.requests[r].shard = s;
                self.shards[s].queues.push(tenant, r);
            }
            Landing::Cached(corrupt) => self.net_send_resp(r, s, true, corrupt),
            Landing::Suppress => {}
        }
    }

    /// A response copy reached the router. The first successful
    /// response wins: it resolves the request, samples the RTT, and
    /// cancels every other outstanding copy. Later copies are late;
    /// nacks re-enter the backoff/retry path.
    fn on_deliver_resp(&mut self, r: usize, s: usize, ok: bool, corrupt: bool) {
        let now = self.now;
        enum Outcome {
            Accept { hedge_win: bool, cancels: u64 },
            Late,
            Nack,
        }
        let outcome = {
            let Some(net) = &mut self.net else { return };
            net.links[s].on_delivered(MsgClass::Resp);
            let req = &mut net.reqs[r];
            if req.resolved {
                net.counters.late_responses += 1;
                Outcome::Late
            } else if !ok {
                Outcome::Nack
            } else {
                req.resolved = true;
                req.accepted = true;
                let hedge_win = req.hedged && req.hedge_shard == s;
                let cancels = req.sent_mask & !(1u64 << s);
                let rtt = now.saturating_sub(req.sent_at).max(1);
                net.open -= 1;
                net.rtt.record(rtt);
                if hedge_win {
                    net.counters.hedge_wins += 1;
                }
                Outcome::Accept { hedge_win, cancels }
            }
        };
        match outcome {
            Outcome::Late => {}
            Outcome::Nack => self.retry_or_failover(r),
            Outcome::Accept { hedge_win, cancels } => {
                self.completed_eve += 1;
                self.requests[r].completed_at = Some(now);
                if corrupt {
                    self.sdc += 1;
                    self.requests[r].corrupted = true;
                    self.instant("serve", "sdc", now);
                }
                self.instant("serve", "complete", now);
                if hedge_win {
                    self.instant("serve", "hedge_win", now);
                }
                for t in 0..self.cfg.shards {
                    if cancels & (1u64 << t) != 0 {
                        for at in self.net_transmit(t, MsgClass::Cancel) {
                            self.push(at, Ev::DeliverCancel(r, t));
                        }
                    }
                }
            }
        }
    }

    /// A first-response-wins cancellation reached shard `s`: a copy
    /// still sitting in the queue is pulled out; anything already
    /// dispatched or finished is a miss (its answer simply arrives
    /// late and is dropped at the router).
    fn on_deliver_cancel(&mut self, r: usize, s: usize) {
        if let Some(net) = &mut self.net {
            net.links[s].on_delivered(MsgClass::Cancel);
        } else {
            return;
        }
        let tenant = self.requests[r].tenant;
        let removed = self.shards[s].queues.remove(tenant, r);
        let Some(net) = &mut self.net else { return };
        if removed {
            net.reqs[r].queued_mask &= !(1u64 << s);
            net.counters.hedge_cancelled += 1;
        } else {
            net.counters.cancel_missed += 1;
        }
    }

    /// A retransmit timer fired. Stale timers (resolved request, or a
    /// newer transmission owns it) drop silently; a live one
    /// retransmits along the healthy ring until the budget runs out,
    /// then fails over to O3+DV.
    fn on_net_timeout(&mut self, r: usize, seq: u32) {
        enum Action {
            Retransmit,
            Exhausted,
        }
        let action = {
            let Some(net) = &mut self.net else { return };
            let req = &mut net.reqs[r];
            if req.resolved || req.xmit_seq != seq {
                return;
            }
            net.counters.timeouts += 1;
            if req.retransmits_left == 0 {
                Action::Exhausted
            } else {
                req.retransmits_left -= 1;
                net.counters.retransmits += 1;
                Action::Retransmit
            }
        };
        match action {
            Action::Exhausted => self.failover(r),
            Action::Retransmit => {
                self.instant("serve", "retransmit", self.now);
                let avail = self.availability_mask();
                let (cur, key) = {
                    let req = &self.requests[r];
                    (req.shard, req.key)
                };
                let dest = if avail[cur] {
                    Some(cur)
                } else {
                    self.router.route_healthy(key, |s| avail[s])
                };
                match dest {
                    Some(s) => {
                        self.requests[r].shard = s;
                        self.net_send_req(r, s);
                    }
                    None => self.failover(r),
                }
            }
        }
    }

    /// The hedge timer fired: if the first transmission has neither
    /// answered nor been superseded, one hedge copy goes to the next
    /// healthy shard past the primary. First response wins; the loser
    /// is cancelled on acceptance.
    fn on_hedge_fire(&mut self, r: usize, seq: u32) {
        let primary = {
            let Some(net) = &self.net else { return };
            let req = &net.reqs[r];
            if req.resolved || req.hedged || req.xmit_seq != seq {
                return;
            }
            req.primary
        };
        let avail = self.availability_mask();
        let key = self.requests[r].key;
        let Some(dest) = self.router.route_healthy(key, |s| s != primary && avail[s]) else {
            return;
        };
        if let Some(net) = &mut self.net {
            let req = &mut net.reqs[r];
            req.hedged = true;
            req.hedge_shard = dest;
            req.sent_mask |= 1u64 << dest;
            net.counters.hedges += 1;
        }
        self.instant("serve", "hedge", self.now);
        // The hedge copy deliberately leaves the transmission sequence
        // and `sent_at` alone: the primary's timeout still governs the
        // request, and the RTT sample stays anchored to first send.
        for at in self.net_transmit(dest, MsgClass::Req) {
            self.push(at, Ev::DeliverReq(r, dest));
        }
    }

    /// The router's heartbeat tick for shard `s`: ping over the lossy
    /// link, re-armed only while the run still has traffic coming or
    /// requests open — heartbeats must not keep a finished calendar
    /// alive.
    fn on_hb_tick(&mut self, s: usize) {
        let now = self.now;
        let (rearm, every) = {
            let Some(net) = &self.net else { return };
            (
                net.open > 0 || now <= net.last_arrival,
                net.policy.heartbeat_every.max(1),
            )
        };
        for at in self.net_transmit(s, MsgClass::Heartbeat) {
            self.push(at, Ev::DeliverHb(s));
        }
        if rearm {
            self.push(now + every, Ev::HbTick(s));
        }
    }

    /// A heartbeat ping reached shard `s`; it acks immediately (the
    /// ack rides the same lossy link back).
    fn on_deliver_hb(&mut self, s: usize) {
        if let Some(net) = &mut self.net {
            net.links[s].on_delivered(MsgClass::Heartbeat);
        } else {
            return;
        }
        for at in self.net_transmit(s, MsgClass::Ack) {
            self.push(at, Ev::DeliverAck(s));
        }
    }

    /// A heartbeat ack reached the router: the failure detector
    /// refreshes, clearing suspicion if the link had gone quiet.
    fn on_deliver_ack(&mut self, s: usize) {
        let now = self.now;
        let recovered = {
            let Some(net) = &mut self.net else { return };
            net.links[s].on_delivered(MsgClass::Ack);
            net.detector.on_ack(now, s).is_some()
        };
        if recovered && s < SHARD_CATS.len() {
            self.instant(SHARD_CATS[s], "suspect_clear", now);
        }
    }

    fn report(mut self) -> ClusterReport {
        let end = self.now;
        let time_at_level = self.ladder.finish(end);
        let mut sojourns: Vec<u64> = Vec::new();
        let mut late = 0u64;
        let mut served_ok = 0u64;
        let tenant_count = self.tenant_names.len();
        let mut t_completed = vec![0u64; tenant_count];
        let mut t_ok = vec![0u64; tenant_count];
        for req in &self.requests {
            if let Some(done) = req.completed_at {
                sojourns.push(done - req.arrival);
                let missed = done > req.deadline;
                if missed {
                    late += 1;
                }
                t_completed[req.tenant] += 1;
                if !missed && !req.corrupted {
                    served_ok += 1;
                    t_ok[req.tenant] += 1;
                }
            }
        }
        sojourns.sort_unstable();
        let pct = |p: f64| -> u64 {
            if sojourns.is_empty() {
                return 0;
            }
            sojourns[((sojourns.len() - 1) as f64 * p).round() as usize]
        };
        let completed = sojourns.len() as u64;
        let arrivals = self.requests.len() as u64;
        let availability = if self.admitted == 0 {
            1.0
        } else {
            served_ok as f64 / self.admitted as f64
        };
        let goodput = if arrivals == 0 {
            0.0
        } else {
            (completed - late) as f64 / arrivals as f64
        };
        let deadline_miss_rate = if completed == 0 {
            0.0
        } else {
            late as f64 / completed as f64
        };
        let tenants: Vec<TenantReport> = (0..tenant_count)
            .map(|t| TenantReport {
                name: self.tenant_names[t].clone(),
                weight: self.tenant_weights[t],
                arrivals: self.tenant_arrivals[t],
                admitted: self.tenant_admitted[t],
                shed: self.tenant_shed[t],
                completed: t_completed[t],
                served_ok: t_ok[t],
                availability: if self.tenant_admitted[t] == 0 {
                    1.0
                } else {
                    t_ok[t] as f64 / self.tenant_admitted[t] as f64
                },
            })
            .collect();
        let shards_detail: Vec<ShardReport> = self
            .shards
            .iter_mut()
            .map(|s| ShardReport {
                routed: s.routed,
                rerouted_in: s.rerouted_in,
                steals_in: s.steals_in,
                steals_out: s.steals_out,
                batches: s.batches,
                batched_requests: s.batched_requests,
                completions: s.completions,
                failures: s.failures,
                spawns: s.spawns,
                retires: s.retires,
                spawn_rollbacks: s.spawn_rollbacks,
                retire_rollbacks: s.retire_rollbacks,
                final_active: s.active_engines() as u64,
                engines: s
                    .engines
                    .iter_mut()
                    .map(|e| EngineReport {
                        dispatches: e.dispatches,
                        completions: e.completions,
                        failures: e.failures,
                        dead: e.dead,
                        final_state: e.breaker.state_at(end),
                        breaker: e.breaker.stats(),
                    })
                    .collect(),
            })
            .collect();
        // The shard-side execution ledger vs the router-side acceptance
        // ledger: with the transport on they differ by exactly the
        // wasted executions (hedge losers, responses lost past the
        // retransmit budget) — the auditor holds us to that.
        let executed_ok: u64 = self.shards.iter().map(|s| s.completions).sum();
        let (net_counters, wasted_executions, links, detector_events, net_max_retransmits) =
            match &self.net {
                Some(net) => {
                    let mut c = net.counters;
                    c.suspicions = net.detector.suspicions();
                    c.recoveries = net.detector.recoveries();
                    let wasted = net
                        .reqs
                        .iter()
                        .map(|q| u64::from(q.execs.saturating_sub(u32::from(q.accepted))))
                        .sum();
                    let links = net
                        .links
                        .iter()
                        .enumerate()
                        .map(|(i, l)| LinkReport {
                            shard: i as u64,
                            req: LinkClassReport::from_stats(l.stats(MsgClass::Req)),
                            resp: LinkClassReport::from_stats(l.stats(MsgClass::Resp)),
                            cancel: LinkClassReport::from_stats(l.stats(MsgClass::Cancel)),
                            heartbeat: LinkClassReport::from_stats(l.stats(MsgClass::Heartbeat)),
                            ack: LinkClassReport::from_stats(l.stats(MsgClass::Ack)),
                        })
                        .collect();
                    (
                        c,
                        wasted,
                        links,
                        net.detector.events().to_vec(),
                        u64::from(net.policy.max_retransmits),
                    )
                }
                None => (
                    NetCounters::default(),
                    0,
                    Vec::new(),
                    Vec::new(),
                    u64::from(self.cfg.net.max_retransmits),
                ),
            };
        // Mirror the tallies into the counter registry: the auditor
        // replays routing, stealing, and shedding against these.
        self.count("cluster.arrivals", arrivals);
        self.count("cluster.admitted", self.admitted);
        self.count(
            "cluster.shed",
            self.shed_capacity + self.shed_infeasible + self.shed_tenant,
        );
        self.count("cluster.shed_tenant", self.shed_tenant);
        self.count("cluster.dispatches", self.dispatches);
        self.count("cluster.batched_requests", self.batched_requests);
        self.count("cluster.failures", self.batch_failures);
        self.count("cluster.retries", self.retries);
        self.count("cluster.failovers", self.failovers);
        self.count("cluster.steals", self.steals);
        self.count("cluster.rerouted", self.rerouted);
        self.count("cluster.completed_eve", self.completed_eve);
        self.count("cluster.completed_fallback", self.completed_fallback);
        self.count("cluster.sdc", self.sdc);
        self.count("cluster.executed_ok", executed_ok);
        // The net mirror is unconditional (zeros when disabled) so the
        // auditor's cross-checks never depend on key presence.
        let (sent, delivered, dropped) = links.iter().fold((0, 0, 0), |acc, l| {
            MsgClass::ALL.iter().fold(acc, |(s, d, x), &class| {
                let c = l.class(class);
                (s + c.sent, d + c.delivered, x + c.dropped)
            })
        });
        self.count("net.sent", sent);
        self.count("net.delivered", delivered);
        self.count("net.dropped", dropped);
        self.count("net.retransmits", net_counters.retransmits);
        self.count("net.timeouts", net_counters.timeouts);
        self.count("net.hedges", net_counters.hedges);
        self.count("net.hedge_wins", net_counters.hedge_wins);
        self.count("net.dedup_hits", net_counters.dedup_hits);
        self.count("net.dup_suppressed", net_counters.dup_suppressed);
        self.count("net.late_responses", net_counters.late_responses);
        self.count("net.stale_drops", net_counters.stale_drops);
        self.count("net.double_applied", net_counters.double_applied);
        self.count("net.wasted_executions", wasted_executions);
        self.count("net.suspicions", net_counters.suspicions);
        self.count("net.recoveries", net_counters.recoveries);
        self.count("cluster.ladder_steps", self.ladder.events().len() as u64);
        self.count("elastic.spawns", self.elastic.spawns());
        self.count("elastic.retires", self.elastic.retires());
        self.count(
            "elastic.rollbacks",
            self.elastic.spawn_rollbacks() + self.elastic.retire_rollbacks(),
        );
        self.count("elastic.drain_cycles", self.elastic.drain_cycles());
        for (i, s) in shards_detail.iter().enumerate() {
            self.count(&format!("cluster.routed.s{i}"), s.routed);
            self.count(&format!("cluster.steals_in.s{i}"), s.steals_in);
        }
        ClusterReport {
            shards: self.cfg.shards,
            engines_per_shard: self.cfg.engines_per_shard,
            requests: arrivals,
            end_cycle: end,
            arrivals,
            admitted: self.admitted,
            shed_capacity: self.shed_capacity,
            shed_infeasible: self.shed_infeasible,
            shed_tenant: self.shed_tenant,
            direct_fallback: self.direct_fallback,
            dispatches: self.dispatches,
            batched_requests: self.batched_requests,
            batch_failures: self.batch_failures,
            request_failures: self.request_failures,
            retries: self.retries,
            failovers: self.failovers,
            steals: self.steals,
            steal_failovers: self.steal_failovers,
            rerouted: self.rerouted,
            completed_eve: self.completed_eve,
            completed_fallback: self.completed_fallback,
            sdc: self.sdc,
            net_enabled: self.cfg.net.enabled,
            executed_ok,
            wasted_executions,
            net_max_retransmits,
            net: net_counters,
            links,
            detector_events,
            availability,
            goodput,
            deadline_miss_rate,
            p50_sojourn: pct(0.50),
            p99_sojourn: pct(0.99),
            ladder: self.ladder.events().to_vec(),
            final_level: self.ladder.level(),
            time_at_level,
            elastic_spawns: self.elastic.spawns(),
            elastic_retires: self.elastic.retires(),
            elastic_spawn_rollbacks: self.elastic.spawn_rollbacks(),
            elastic_retire_rollbacks: self.elastic.retire_rollbacks(),
            elastic_drain_cycles: self.elastic.drain_cycles(),
            elastic_window: self.cfg.elastic.window,
            elastic_max_per_window: self.cfg.elastic.max_reconfigs_per_window,
            elastic_events: self.elastic.events().to_vec(),
            shards_detail,
            tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(storm: FaultStorm) -> ClusterReport {
        let cfg = ClusterConfig {
            shards: 4,
            engines_per_shard: 2,
            seed: 11,
            ..ClusterConfig::default()
        };
        let traffic = ClusterTraffic {
            requests: 300,
            mean_gap: 600,
            seed: 5,
            ..ClusterTraffic::default()
        };
        let profile = ServiceProfile::synthetic(3, 1000, 4000, 2);
        ClusterSim::new(cfg, profile, traffic, storm).unwrap().run()
    }

    fn check_conservation(r: &ClusterReport) {
        assert_eq!(
            r.arrivals,
            r.admitted + r.shed_capacity + r.shed_infeasible + r.shed_tenant
        );
        assert_eq!(r.admitted, r.completed_eve + r.completed_fallback);
        // Two ledgers: shards count what they ran, the router counts
        // what it accepted. They reconcile through wasted executions.
        assert_eq!(r.batched_requests, r.executed_ok + r.request_failures);
        assert_eq!(r.executed_ok, r.completed_eve + r.wasted_executions);
        assert_eq!(r.failovers, r.completed_fallback);
        assert_eq!(r.net.double_applied, 0, "a shard re-applied a request");
        let mut cancels_delivered = 0;
        for l in &r.links {
            for class in MsgClass::ALL {
                let c = l.class(class);
                assert_eq!(
                    c.sent,
                    c.delivered + c.dropped + c.in_flight,
                    "link {} {class:?} leaks copies",
                    l.shard
                );
                assert_eq!(
                    c.in_flight, 0,
                    "link {} {class:?} still has copies on the wire at end",
                    l.shard
                );
            }
            cancels_delivered += l.cancel.delivered;
        }
        assert_eq!(
            cancels_delivered,
            r.net.hedge_cancelled + r.net.cancel_missed,
            "every delivered cancel either pulled a copy or missed"
        );
        assert!(
            r.net.retransmits <= r.admitted * r.net_max_retransmits,
            "retransmits exceed the per-request budget"
        );
        assert!(r.net.hedge_wins <= r.net.hedges);
        assert_eq!(
            r.dispatches,
            r.shards_detail.iter().map(|s| s.batches).sum::<u64>()
        );
        assert_eq!(
            r.arrivals,
            r.tenants.iter().map(|t| t.arrivals).sum::<u64>()
        );
        assert_eq!(
            r.admitted,
            r.tenants.iter().map(|t| t.admitted).sum::<u64>()
        );
        for t in &r.tenants {
            assert_eq!(t.admitted, t.completed, "tenant {} leaked work", t.name);
        }
        assert_eq!(r.time_at_level.iter().sum::<u64>(), r.end_cycle);
    }

    #[test]
    fn a_calm_cluster_serves_everything_at_full_service() {
        let r = quick(FaultStorm::none());
        check_conservation(&r);
        assert_eq!(r.sdc, 0);
        assert_eq!(r.steals, 0);
        assert_eq!(r.final_level, ServiceLevel::Full);
        assert!(r.ladder.is_empty());
        assert!((r.availability - 1.0).abs() < 1e-12);
        // Every shard saw traffic: the ring spreads 1024 keys.
        for (i, s) in r.shards_detail.iter().enumerate() {
            assert!(s.routed > 0, "shard {i} owned no keys");
        }
    }

    #[test]
    fn runs_are_byte_deterministic() {
        let storm = FaultStorm::synth(9, 8, 300_000, 1.5);
        let a = quick(storm.clone());
        let b = quick(storm);
        assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
    }

    #[test]
    fn bursty_traffic_coalesces_into_batches() {
        let cfg = ClusterConfig {
            shards: 2,
            engines_per_shard: 2,
            seed: 3,
            ..ClusterConfig::default()
        };
        let traffic = ClusterTraffic {
            requests: 300,
            mean_gap: 120, // heavy load: queues form, riders coalesce
            keys: 8,
            seed: 7,
            ..ClusterTraffic::default()
        };
        let profile = ServiceProfile::synthetic(2, 1500, 5000, 2);
        let r = ClusterSim::new(cfg, profile, traffic, FaultStorm::none())
            .unwrap()
            .run();
        check_conservation(&r);
        assert!(
            r.batched_requests > r.dispatches,
            "no coalescing happened: {} batches carried {} requests",
            r.dispatches,
            r.batched_requests
        );
    }

    #[test]
    fn a_dead_shard_is_stolen_from_and_work_completes() {
        let storm =
            FaultStorm::kill_shard(1, 2, 60_000).merged(FaultStorm::hot_key(0, 50_000, 120_000));
        // Aim the hot key at the doomed shard so its queue is deep when
        // it dies.
        let r = quick(storm);
        check_conservation(&r);
        assert_eq!(r.sdc, 0);
        // The shard's engines died and its breakers opened.
        let dead = &r.shards_detail[1];
        assert!(dead.engines.iter().all(|e| e.dead));
        assert!(r.rerouted > 0, "arrivals must re-route off the dead shard");
        assert!(r.availability >= 0.9, "availability {}", r.availability);
    }

    #[test]
    fn a_partition_heals_and_the_shard_returns() {
        let r = quick(FaultStorm::partition(2, 40_000, 60_000));
        check_conservation(&r);
        assert_eq!(r.sdc, 0);
        // During the window traffic re-routed; afterwards the shard
        // served again.
        let p = &r.shards_detail[2];
        assert!(p.batches > 0, "healed shard never served");
        assert!(r.rerouted > 0 || r.steals > 0);
    }

    fn net_quick(loss: f64, storm: FaultStorm) -> ClusterReport {
        let cfg = ClusterConfig {
            shards: 4,
            engines_per_shard: 2,
            seed: 11,
            net: NetPolicy::lossy(loss),
            ..ClusterConfig::default()
        };
        let traffic = ClusterTraffic {
            requests: 300,
            mean_gap: 600,
            seed: 5,
            ..ClusterTraffic::default()
        };
        let profile = ServiceProfile::synthetic(3, 1000, 4000, 2);
        ClusterSim::new(cfg, profile, traffic, storm).unwrap().run()
    }

    #[test]
    fn a_lossy_transport_still_balances_every_ledger() {
        let r = net_quick(0.05, FaultStorm::none());
        check_conservation(&r);
        assert!(r.net_enabled);
        assert_eq!(r.sdc, 0);
        let req_sent: u64 = r.links.iter().map(|l| l.req.sent).sum();
        let req_dropped: u64 = r.links.iter().map(|l| l.req.dropped).sum();
        assert!(req_sent > 300, "requests ride the wire");
        assert!(req_dropped > 0, "5% loss drops something over ~1k sends");
        assert!(
            r.net.retransmits > 0,
            "dropped requests must trigger retransmits"
        );
        let hb: u64 = r.links.iter().map(|l| l.heartbeat.sent).sum();
        assert!(hb > 0, "heartbeats flow");
        assert!(
            r.availability > 0.95,
            "retransmits should absorb 5% loss, got {}",
            r.availability
        );
    }

    #[test]
    fn lossy_runs_are_byte_deterministic() {
        let storm = FaultStorm::synth(9, 8, 300_000, 1.0);
        let a = net_quick(0.08, storm.clone());
        let b = net_quick(0.08, storm);
        assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
    }

    #[test]
    fn duplication_is_absorbed_by_dedup_and_suppression() {
        let cfg = ClusterConfig {
            shards: 2,
            engines_per_shard: 2,
            seed: 3,
            net: NetPolicy {
                duplicate: 0.5,
                reorder: 0.2,
                ..NetPolicy::lossy(0.05)
            },
            ..ClusterConfig::default()
        };
        let traffic = ClusterTraffic {
            requests: 400,
            mean_gap: 400,
            seed: 7,
            ..ClusterTraffic::default()
        };
        let profile = ServiceProfile::synthetic(2, 1000, 4000, 2);
        let r = ClusterSim::new(cfg, profile, traffic, FaultStorm::none())
            .unwrap()
            .run();
        check_conservation(&r);
        let dup: u64 = r.links.iter().map(|l| l.req.dup_copies).sum();
        assert!(dup > 0, "50% duplication mints extra copies");
        assert!(
            r.net.dup_suppressed + r.net.dedup_hits > 0,
            "duplicate copies must hit the queued mask or the cache"
        );
        assert_eq!(r.net.double_applied, 0);
        assert_eq!(r.sdc, 0);
    }

    #[test]
    fn a_partition_under_the_transport_is_loss_the_detector_catches() {
        let r = net_quick(0.02, FaultStorm::partition(2, 40_000, 60_000));
        check_conservation(&r);
        assert_eq!(r.sdc, 0);
        assert!(
            r.detector_events
                .iter()
                .any(|e| e.shard == 2 && e.suspected),
            "the heartbeat detector must suspect the partitioned link"
        );
        assert!(
            r.detector_events
                .iter()
                .any(|e| e.shard == 2 && !e.suspected),
            "and clear the suspicion once the link heals"
        );
        assert!(r.net.suspicions >= 1);
        assert_eq!(r.net.suspicions, r.net.recoveries, "partition healed");
        // Unlike the legacy model, the shard's engines never went
        // unhealthy — the link did. Work queued behind the partition
        // still executed (some of it wasted) and the shard serves
        // again after the heal.
        let p = &r.shards_detail[2];
        assert!(p.batches > 0, "partitioned shard never served");
        assert!(r.availability >= 0.9, "availability {}", r.availability);
    }

    #[test]
    fn hedges_fire_under_a_degraded_link_and_win() {
        // Warm the RTT estimator with clean traffic, then degrade one
        // link to 90% loss: primaries stall, hedges answer.
        let storm = FaultStorm::link_degrade(1, 90, 60_000, 80_000);
        let r = net_quick(0.0, storm);
        check_conservation(&r);
        assert!(r.net.hedges > 0, "hedge timers must fire on the stall");
        assert!(r.net.hedge_wins > 0, "some hedges must beat the primary");
        assert!(
            r.net.hedge_cancelled + r.net.cancel_missed > 0,
            "first-response-wins must cancel the losers"
        );
    }

    #[test]
    fn net_misconfigurations_are_typed_errors() {
        let profile = ServiceProfile::synthetic(1, 100, 200, 1);
        let bad_prob = ClusterConfig {
            net: NetPolicy::lossy(1.5),
            ..ClusterConfig::default()
        };
        assert!(matches!(
            ClusterSim::new(
                bad_prob,
                profile.clone(),
                ClusterTraffic::default(),
                FaultStorm::none()
            ),
            Err(ServeError::Config(_))
        ));
        let too_wide = ClusterConfig {
            shards: 65,
            net: NetPolicy::lossy(0.1),
            ..ClusterConfig::default()
        };
        assert!(matches!(
            ClusterSim::new(
                too_wide,
                profile.clone(),
                ClusterTraffic::default(),
                FaultStorm::none()
            ),
            Err(ServeError::Config(_))
        ));
        // A link-degrade storm needs the transport to exist at all.
        let err = ClusterSim::new(
            ClusterConfig::default(),
            profile,
            ClusterTraffic::default(),
            FaultStorm::link_degrade(0, 50, 100, 1_000),
        )
        .err()
        .unwrap();
        assert!(matches!(err, ServeError::Storm(_)), "{err}");
        assert!(err.to_string().contains("transport"), "{err}");
    }

    #[test]
    fn malformed_cluster_storms_are_typed_errors() {
        let cfg = ClusterConfig {
            shards: 2,
            engines_per_shard: 2,
            ..ClusterConfig::default()
        };
        let profile = ServiceProfile::synthetic(1, 100, 200, 2);
        let err = ClusterSim::new(
            cfg,
            profile.clone(),
            ClusterTraffic::default(),
            FaultStorm::kill_one(9, 100),
        )
        .err()
        .unwrap();
        assert!(matches!(err, ServeError::Storm(_)), "{err}");
        let err = ClusterSim::new(
            cfg,
            profile,
            ClusterTraffic::default(),
            FaultStorm::partition(5, 0, 100),
        )
        .err()
        .unwrap();
        assert!(matches!(err, ServeError::Storm(_)), "{err}");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let profile = ServiceProfile::synthetic(1, 100, 200, 1);
        for cfg in [
            ClusterConfig {
                shards: 0,
                ..ClusterConfig::default()
            },
            ClusterConfig {
                engines_per_shard: 0,
                ..ClusterConfig::default()
            },
            ClusterConfig {
                vnodes: 0,
                ..ClusterConfig::default()
            },
            ClusterConfig {
                max_attempts: 0,
                ..ClusterConfig::default()
            },
        ] {
            assert!(matches!(
                ClusterSim::new(
                    cfg,
                    profile.clone(),
                    ClusterTraffic::default(),
                    FaultStorm::none()
                ),
                Err(ServeError::Config(_))
            ));
        }
        let no_tenants = ClusterTraffic {
            tenants: Vec::new(),
            ..ClusterTraffic::default()
        };
        assert!(ClusterSim::new(
            ClusterConfig::default(),
            profile,
            no_tenants,
            FaultStorm::none()
        )
        .is_err());
    }

    #[test]
    fn shaped_traffic_keeps_every_conservation_identity() {
        // Each non-uniform shape runs the full cluster and still
        // balances the books, byte-deterministically.
        let horizon = 300 * 600u64;
        for shape in [
            TrafficShape::Diurnal {
                period: horizon / 2,
            },
            TrafficShape::Bursty {
                burst: 16,
                quiet: 48,
                gain: 8,
            },
            TrafficShape::HotKeyStorm {
                key: 11,
                every: horizon / 3,
                duration: horizon / 9,
            },
        ] {
            let run = || {
                let cfg = ClusterConfig {
                    shards: 4,
                    engines_per_shard: 2,
                    seed: 11,
                    ..ClusterConfig::default()
                };
                let traffic = ClusterTraffic {
                    requests: 300,
                    mean_gap: 600,
                    shape,
                    seed: 5,
                    ..ClusterTraffic::default()
                };
                let profile = ServiceProfile::synthetic(3, 1000, 4000, 2);
                ClusterSim::new(cfg, profile, traffic, FaultStorm::none())
                    .unwrap()
                    .run()
            };
            let r = run();
            check_conservation(&r);
            assert_eq!(r.sdc, 0, "{shape:?}");
            assert_eq!(
                r.to_json().to_pretty(),
                run().to_json().to_pretty(),
                "{shape:?}: not deterministic"
            );
        }
    }

    #[test]
    fn arrival_side_key_storm_skews_routing_like_a_storm_event() {
        let cfg = ClusterConfig {
            shards: 4,
            engines_per_shard: 2,
            seed: 11,
            ..ClusterConfig::default()
        };
        let router = Router::new(cfg.seed, 4, 16);
        let hot = router.key_for_shard(2, 10_000).unwrap();
        let traffic = ClusterTraffic {
            requests: 300,
            mean_gap: 600,
            shape: TrafficShape::HotKeyStorm {
                key: hot,
                every: 1,
                duration: 1,
            },
            seed: 5,
            ..ClusterTraffic::default()
        };
        let profile = ServiceProfile::synthetic(3, 1000, 4000, 2);
        let r = ClusterSim::new(cfg, profile, traffic, FaultStorm::none())
            .unwrap()
            .run();
        check_conservation(&r);
        let hot_share = r.shards_detail[2].routed as f64 / r.admitted.max(1) as f64;
        assert!(
            hot_share > 0.5,
            "storm shard owned only {hot_share:.2} of routed traffic"
        );
    }

    fn elastic_cfg() -> ClusterConfig {
        ClusterConfig {
            shards: 2,
            engines_per_shard: 1,
            elastic: ElasticPolicy {
                enabled: true,
                min_engines: 1,
                max_engines: 3,
                scale_up_backlog: 0.2,
                scale_down_backlog: 0.05,
                dwell: 4_000,
                ..ElasticPolicy::default()
            },
            seed: 11,
            ..ClusterConfig::default()
        }
    }

    fn elastic_run(cfg: ClusterConfig, storm: FaultStorm) -> ClusterReport {
        let traffic = ClusterTraffic {
            requests: 250,
            mean_gap: 300,
            seed: 5,
            ..ClusterTraffic::default()
        };
        ClusterSim::new(
            cfg,
            ServiceProfile::synthetic(3, 1000, 4000, 3),
            traffic,
            storm,
        )
        .unwrap()
        .run()
    }

    #[test]
    fn pressure_spawns_engines_and_the_tail_retires_them() {
        let r = elastic_run(elastic_cfg(), FaultStorm::none());
        check_conservation(&r);
        assert_eq!(r.sdc, 0);
        assert!(r.elastic_spawns > 0, "sustained pressure never spawned");
        assert!(r.elastic_retires > 0, "the quiet tail never retired");
        // The ledger and the final partition agree, shard by shard.
        for s in &r.shards_detail {
            assert_eq!(s.final_active + s.retires, 1 + s.spawns);
            // Slot space: every shard carries max_engines slots.
            assert_eq!(s.engines.len(), 3);
        }
        // Every start resolved exactly once.
        let starts = r
            .elastic_events
            .iter()
            .filter(|e| e.kind.is_start())
            .count() as u64;
        assert_eq!(
            starts,
            r.elastic_spawns
                + r.elastic_retires
                + r.elastic_spawn_rollbacks
                + r.elastic_retire_rollbacks
        );
    }

    #[test]
    fn elastic_runs_are_byte_deterministic() {
        let a = elastic_run(elastic_cfg(), FaultStorm::none());
        let b = elastic_run(elastic_cfg(), FaultStorm::none());
        assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
    }

    #[test]
    fn pinned_bounds_never_reconfigure() {
        let mut cfg = elastic_cfg();
        cfg.elastic.min_engines = 1;
        cfg.elastic.max_engines = 1;
        let r = elastic_run(cfg, FaultStorm::none());
        check_conservation(&r);
        assert_eq!(r.elastic_spawns + r.elastic_retires, 0);
        assert!(r.elastic_events.is_empty());
    }

    #[test]
    fn elastic_storms_address_slot_space() {
        // Engine index 2 is shard 0's third slot: meaningless in the
        // 2×1 static geometry, valid once the elastic ceiling is 3.
        let cfg = elastic_cfg();
        let r = elastic_run(cfg, FaultStorm::kill_one(2, 10_000));
        check_conservation(&r);
        let mut off = cfg;
        off.elastic.enabled = false;
        let traffic = ClusterTraffic::default();
        let err = ClusterSim::new(
            off,
            ServiceProfile::synthetic(3, 1000, 4000, 3),
            traffic,
            FaultStorm::kill_one(2, 10_000),
        )
        .err()
        .unwrap();
        assert!(matches!(err, ServeError::Storm(_)), "{err}");
    }

    #[test]
    fn invalid_elastic_policies_are_rejected() {
        let profile = ServiceProfile::synthetic(1, 100, 200, 1);
        for tweak in [
            |e: &mut ElasticPolicy| e.min_engines = 0,
            |e: &mut ElasticPolicy| e.min_engines = 2,
            |e: &mut ElasticPolicy| e.max_engines = 0,
            |e: &mut ElasticPolicy| e.scale_down_backlog = 0.9,
        ] {
            let mut cfg = ClusterConfig {
                shards: 2,
                engines_per_shard: 1,
                elastic: ElasticPolicy {
                    enabled: true,
                    min_engines: 1,
                    max_engines: 2,
                    ..ElasticPolicy::default()
                },
                ..ClusterConfig::default()
            };
            tweak(&mut cfg.elastic);
            assert!(matches!(
                ClusterSim::new(
                    cfg,
                    profile.clone(),
                    ClusterTraffic::default(),
                    FaultStorm::none()
                ),
                Err(ServeError::Config(_))
            ));
        }
    }

    #[test]
    fn hot_key_windows_skew_routing() {
        let cfg = ClusterConfig {
            shards: 4,
            engines_per_shard: 2,
            seed: 11,
            ..ClusterConfig::default()
        };
        let router = Router::new(cfg.seed, 4, 16);
        let hot = router.key_for_shard(3, 10_000).unwrap();
        let traffic = ClusterTraffic {
            requests: 300,
            mean_gap: 600,
            seed: 5,
            ..ClusterTraffic::default()
        };
        let profile = ServiceProfile::synthetic(3, 1000, 4000, 2);
        let r = ClusterSim::new(
            cfg,
            profile,
            traffic,
            FaultStorm::hot_key(hot, 0, u64::MAX / 2),
        )
        .unwrap()
        .run();
        check_conservation(&r);
        let hot_share = r.shards_detail[3].routed as f64 / r.admitted.max(1) as f64;
        assert!(
            hot_share > 0.5,
            "hot shard owned only {hot_share:.2} of routed traffic"
        );
    }
}
