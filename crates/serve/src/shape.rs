//! Seeded traffic shapes: the open-loop arrival processes the cluster
//! simulation replays.
//!
//! The original cluster traffic was a uniform renewal process — one
//! `SplitMix64` stream drawing gap, tenant, workload, and key per
//! request. Real serving traffic is not uniform: load swells and
//! shrinks over a day, tenants burst, and a handful of keys go viral.
//! [`TrafficShape`] captures those patterns as *pure functions of the
//! seed*, so a diurnal curve or a key storm is exactly as reproducible
//! as the calm baseline: same traffic, same bytes, at any campaign
//! thread count.
//!
//! Every shape conserves the configured mean arrival rate (uniform and
//! bursty by construction; the diurnal triangle wave by symmetry, to
//! within the harmonic-mean bias of sampling faster during the fast
//! phase), so reports across shapes compare offered-load like against
//! like. All of the math is integer — no transcendentals — because
//! `libm` results are not bit-portable and byte-determinism is the
//! whole point.
//!
//! [`arrivals`] is the single generator both [`ClusterSim`] and the
//! property tests call: the `Uniform` arm reproduces the historical
//! RNG call order *exactly*, so seeds recorded by earlier campaigns
//! replay unchanged.
//!
//! [`ClusterSim`]: crate::cluster::ClusterSim

use crate::cluster::ClusterTraffic;
use eve_common::SplitMix64;

/// The arrival-process family for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrafficShape {
    /// Gaps uniform on `[0, 2 * mean_gap]`: the historical baseline.
    #[default]
    Uniform,
    /// A diurnal load curve: the local arrival rate follows a triangle
    /// wave with the given period in cycles, swinging the mean gap
    /// between 50% (peak traffic) and 150% (trough) of nominal.
    /// Periods below 2 cycles degrade to `Uniform`.
    Diurnal {
        /// Full wave period in cycles.
        period: u64,
    },
    /// Bursty traffic in request counts: each cycle of
    /// `burst + quiet` requests sends the first `burst` of them at
    /// `gain`× the nominal rate and stretches the remaining `quiet`
    /// to compensate, so the overall mean rate is conserved exactly.
    /// Zero fields are clamped to 1.
    Bursty {
        /// Requests per cycle arriving at the boosted rate.
        burst: u64,
        /// Requests per cycle arriving at the compensating slow rate.
        quiet: u64,
        /// Rate multiplier inside the burst.
        gain: u64,
    },
    /// A one-shot phase trace in request counts: the first `lead`
    /// requests arrive at the nominal rate, the next `burst` arrive at
    /// `gain`× that rate, and everything after returns to nominal.
    /// This is the canonical elastic-reconfiguration trace — a
    /// scalar-heavy steady state, a vector burst that should spawn
    /// engines, and a quiet tail that should retire them. Unlike
    /// [`TrafficShape::Bursty`] the burst happens exactly once and the
    /// tail does *not* compensate, so the trace's mean rate is hotter
    /// than nominal by design. Zero `gain` is clamped to 1.
    Phased {
        /// Requests before the burst, at the nominal rate.
        lead: u64,
        /// Requests inside the burst, at `gain`× the nominal rate.
        burst: u64,
        /// Rate multiplier inside the burst.
        gain: u64,
    },
    /// A periodic viral-key storm on the arrival side: whenever
    /// `at % every < duration`, 90% of arrivals hammer `key` (the
    /// remainder stay uniform), like the storm-scripted
    /// [`HotKeySkew`](crate::storm::StormEventKind::HotKeySkew)
    /// windows but owned by the traffic model itself.
    HotKeyStorm {
        /// The viral routing key.
        key: u64,
        /// Window period in cycles (clamped to at least 1).
        every: u64,
        /// Hot cycles at the start of each period.
        duration: u64,
    },
}

/// One generated request, before the simulation prices its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival cycle (nondecreasing across the schedule).
    pub at: u64,
    /// Index into the traffic's tenant mix.
    pub tenant: usize,
    /// Index into the service profile.
    pub workload: usize,
    /// Routing key.
    pub key: u64,
}

/// The diurnal gap multiplier in percent at cycle `at`: a triangle
/// wave from 50 (wave start: peak rate) up to 150 (half period:
/// trough) and back.
fn diurnal_pct(at: u64, period: u64) -> u64 {
    let t = at % period;
    let tri = t.min(period - t);
    50 + 200 * tri / period
}

/// Generates the full arrival schedule for `traffic` against a
/// `workloads`-entry service profile, folding in storm-scripted
/// hot-key windows `(start, end, key)`.
///
/// The schedule is a pure function of the arguments; identical inputs
/// produce identical vectors. With [`TrafficShape::Uniform`] the RNG
/// call sequence is bit-compatible with the pre-shape generator.
#[must_use]
pub fn arrivals(
    traffic: &ClusterTraffic,
    workloads: usize,
    hot_windows: &[(u64, u64, u64)],
) -> Vec<Arrival> {
    let total_share: f64 = traffic.tenants.iter().map(|t| t.share.max(0.0)).sum();
    // Bursty per-request local means, conserving the cycle total:
    // burst requests at mean/gain, quiet requests soak up the rest.
    let bursty = match traffic.shape {
        TrafficShape::Bursty { burst, quiet, gain } => {
            let (burst, quiet, gain) = (burst.max(1), quiet.max(1), gain.max(1));
            let fast = traffic.mean_gap / gain;
            let slow = (traffic.mean_gap * (burst + quiet) - fast * burst) / quiet;
            Some((burst, quiet, fast, slow))
        }
        _ => None,
    };
    let mut rng = SplitMix64::new(traffic.seed);
    let mut at = 0u64;
    let mut out = Vec::with_capacity(traffic.requests);
    for i in 0..traffic.requests {
        at += match (traffic.shape, bursty) {
            (TrafficShape::Diurnal { period }, _) if period >= 2 => {
                rng.below(2 * traffic.mean_gap + 1) * diurnal_pct(at, period) / 100
            }
            (_, Some((burst, quiet, fast, slow))) => {
                let local = if (i as u64) % (burst + quiet) < burst {
                    fast
                } else {
                    slow
                };
                rng.below(2 * local + 1)
            }
            (TrafficShape::Phased { lead, burst, gain }, _) => {
                let i = i as u64;
                let local = if i >= lead && i < lead + burst {
                    traffic.mean_gap / gain.max(1)
                } else {
                    traffic.mean_gap
                };
                rng.below(2 * local + 1)
            }
            _ => rng.below(2 * traffic.mean_gap + 1),
        };
        let x = rng.next_f64() * total_share;
        let mut acc = 0.0;
        let mut tenant = traffic.tenants.len() - 1;
        for (j, spec) in traffic.tenants.iter().enumerate() {
            acc += spec.share.max(0.0);
            if x < acc {
                tenant = j;
                break;
            }
        }
        let workload = rng.below(workloads as u64) as usize;
        let hot = hot_windows.iter().find(|w| at >= w.0 && at < w.1);
        let key = match hot {
            // Inside a skew window, 90% of arrivals hammer the hot
            // key; the rest stay uniform.
            Some(&(_, _, k)) if rng.chance(0.9) => k,
            _ => match traffic.shape {
                TrafficShape::HotKeyStorm {
                    key,
                    every,
                    duration,
                } if at % every.max(1) < duration && rng.chance(0.9) => key,
                _ => rng.below(traffic.keys.max(1)),
            },
        };
        out.push(Arrival {
            at,
            tenant,
            workload,
            key,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traffic(shape: TrafficShape) -> ClusterTraffic {
        ClusterTraffic {
            requests: 4000,
            mean_gap: 1000,
            shape,
            seed: 0x7E57,
            ..ClusterTraffic::default()
        }
    }

    /// Observed mean gap of a schedule.
    fn mean_gap(arr: &[Arrival]) -> f64 {
        arr.last().unwrap().at as f64 / arr.len() as f64
    }

    fn shapes() -> [TrafficShape; 5] {
        [
            TrafficShape::Uniform,
            TrafficShape::Diurnal { period: 200_000 },
            TrafficShape::Bursty {
                burst: 20,
                quiet: 80,
                gain: 8,
            },
            TrafficShape::Phased {
                lead: 1000,
                burst: 2000,
                gain: 6,
            },
            TrafficShape::HotKeyStorm {
                key: 7,
                every: 100_000,
                duration: 30_000,
            },
        ]
    }

    #[test]
    fn schedules_are_seed_deterministic() {
        for shape in shapes() {
            let t = traffic(shape);
            let a = arrivals(&t, 5, &[]);
            let b = arrivals(&t, 5, &[]);
            assert_eq!(a, b, "{shape:?}");
            let other = ClusterTraffic { seed: 1, ..t };
            assert_ne!(arrivals(&other, 5, &[]), a, "{shape:?}: seed ignored");
        }
    }

    #[test]
    fn time_runs_forward_and_fields_stay_in_range() {
        for shape in shapes() {
            let t = traffic(shape);
            let arr = arrivals(&t, 5, &[]);
            assert_eq!(arr.len(), t.requests);
            let mut prev = 0;
            for a in &arr {
                assert!(a.at >= prev, "{shape:?}: time went backwards");
                prev = a.at;
                assert!(a.tenant < t.tenants.len());
                assert!(a.workload < 5);
                assert!(a.key < t.keys);
            }
        }
    }

    #[test]
    fn every_shape_conserves_the_configured_rate() {
        // Uniform and bursty conserve exactly in expectation; the
        // diurnal triangle picks up a small harmonic-mean bias from
        // sampling faster during the fast phase. 15% covers all of
        // them with margin at 4000 requests. Phased is exempt: its
        // one-shot burst is deliberately uncompensated.
        for shape in shapes() {
            if matches!(shape, TrafficShape::Phased { .. }) {
                continue;
            }
            let t = traffic(shape);
            let m = mean_gap(&arrivals(&t, 5, &[]));
            let nominal = t.mean_gap as f64;
            assert!(
                (m - nominal).abs() / nominal < 0.15,
                "{shape:?}: observed mean gap {m:.0} vs configured {nominal}"
            );
        }
    }

    #[test]
    fn diurnal_density_actually_swings() {
        let t = traffic(TrafficShape::Diurnal { period: 200_000 });
        let arr = arrivals(&t, 5, &[]);
        // Peak-rate band: the quarter of the wave around the period
        // boundary (multiplier < 100%); trough band: around the half
        // period. Peak must see substantially more arrivals.
        let (mut peak, mut trough) = (0u64, 0u64);
        for a in &arr {
            let tri = (a.at % 200_000).min(200_000 - a.at % 200_000);
            if tri < 25_000 {
                peak += 1;
            } else if tri >= 75_000 {
                trough += 1;
            }
        }
        assert!(
            peak as f64 > trough as f64 * 1.5,
            "diurnal flatlined: {peak} peak vs {trough} trough arrivals"
        );
    }

    #[test]
    fn bursts_are_visible_in_the_gap_distribution() {
        let t = traffic(TrafficShape::Bursty {
            burst: 20,
            quiet: 80,
            gain: 8,
        });
        let arr = arrivals(&t, 5, &[]);
        // Burst gaps are uniform on [0, 250]; quiet gaps on [0, 2375].
        // Count gaps at or under the burst ceiling: all burst draws
        // land there but only ~10% of quiet draws do.
        let mut prev = 0;
        let short = arr
            .iter()
            .filter(|a| {
                let gap = a.at - prev;
                prev = a.at;
                gap <= 2 * t.mean_gap / 8
            })
            .count() as f64;
        let frac = short / arr.len() as f64;
        assert!(
            (0.2..0.4).contains(&frac),
            "burst structure missing: {frac:.2} short gaps"
        );
        let uniform = arrivals(&traffic(TrafficShape::Uniform), 5, &[]);
        let mut prev = 0;
        let base = uniform
            .iter()
            .filter(|a| {
                let gap = a.at - prev;
                prev = a.at;
                gap <= 2 * t.mean_gap / 8
            })
            .count() as f64
            / uniform.len() as f64;
        assert!(frac > 1.5 * base, "bursty {frac:.2} vs uniform {base:.2}");
    }

    #[test]
    fn phased_traffic_bursts_once_and_calms_back_down() {
        let t = traffic(TrafficShape::Phased {
            lead: 1000,
            burst: 2000,
            gain: 6,
        });
        let arr = arrivals(&t, 5, &[]);
        // Mean gap per phase, by request index.
        let gap_mean = |lo: usize, hi: usize| {
            let span = arr[hi - 1].at - arr[lo].at;
            span as f64 / (hi - lo - 1) as f64
        };
        let lead = gap_mean(0, 1000);
        let burst = gap_mean(1000, 3000);
        let tail = gap_mean(3000, 4000);
        // The burst runs ~6x hot; lead and tail sit at nominal.
        assert!(
            burst * 4.0 < lead && burst * 4.0 < tail,
            "no burst: lead {lead:.0}, burst {burst:.0}, tail {tail:.0}"
        );
        for (phase, m) in [("lead", lead), ("tail", tail)] {
            assert!(
                (m - 1000.0).abs() < 150.0,
                "{phase} off nominal: {m:.0} vs 1000"
            );
        }
    }

    #[test]
    fn key_storm_concentrates_inside_windows_only() {
        let t = traffic(TrafficShape::HotKeyStorm {
            key: 42,
            every: 100_000,
            duration: 30_000,
        });
        let arr = arrivals(&t, 5, &[]);
        let (mut hot_in, mut n_in, mut hot_out, mut n_out) = (0u64, 0u64, 0u64, 0u64);
        for a in &arr {
            if a.at % 100_000 < 30_000 {
                n_in += 1;
                hot_in += u64::from(a.key == 42);
            } else {
                n_out += 1;
                hot_out += u64::from(a.key == 42);
            }
        }
        assert!(
            n_in > 100 && n_out > 100,
            "windows unsampled: {n_in}/{n_out}"
        );
        let in_frac = hot_in as f64 / n_in as f64;
        assert!(in_frac > 0.8, "in-window hot fraction {in_frac:.2}");
        let out_frac = hot_out as f64 / n_out as f64;
        assert!(out_frac < 0.05, "out-window hot fraction {out_frac:.2}");
    }

    #[test]
    fn storm_windows_still_override_every_shape() {
        // Storm-scripted skew applies on top of any shape: inside the
        // window ~90% of keys are the storm's key regardless.
        for shape in shapes() {
            let t = traffic(shape);
            let arr = arrivals(&t, 5, &[(0, u64::MAX, 999)]);
            let hot = arr.iter().filter(|a| a.key == 999).count() as f64;
            let frac = hot / arr.len() as f64;
            assert!((frac - 0.9).abs() < 0.05, "{shape:?}: storm skew {frac:.2}");
        }
    }

    #[test]
    fn degenerate_shape_parameters_are_clamped() {
        for shape in [
            TrafficShape::Diurnal { period: 0 },
            TrafficShape::Diurnal { period: 1 },
            TrafficShape::Bursty {
                burst: 0,
                quiet: 0,
                gain: 0,
            },
            TrafficShape::Phased {
                lead: 0,
                burst: 0,
                gain: 0,
            },
            TrafficShape::HotKeyStorm {
                key: 0,
                every: 0,
                duration: 0,
            },
        ] {
            let t = ClusterTraffic {
                requests: 200,
                shape,
                ..ClusterTraffic::default()
            };
            let arr = arrivals(&t, 3, &[]);
            assert_eq!(arr.len(), 200, "{shape:?}");
        }
    }
}
