//! The seeded consistent-hash router.
//!
//! Cluster arrivals carry a routing key (a tenant's document id, a
//! cache line, a model shard — anything sticky); the router maps each
//! key onto one of N shards through a classic consistent-hash ring
//! with virtual nodes. The ring is a pure function of
//! `(seed, shards, vnodes)`, so routing decisions replay exactly, and
//! the vnode count trades placement smoothness against ring size the
//! way MASIM trades array-pool granularity against scheduler state.
//!
//! Failure routing walks the ring: [`Router::route_healthy`] yields
//! the first *available* shard at or after the key's home position, so
//! when a shard partitions, only the keys it owned move — every other
//! key keeps its placement, which is the whole point of consistent
//! hashing over `key % shards`.

use eve_common::SplitMix64;

/// Typed routing failure: every shard on the ring was unavailable.
///
/// An all-breakers-open cluster is a load-shedding situation, not a
/// programming error — callers convert this into a shed/fallback
/// decision (see [`crate::ServeError::Unroutable`]) instead of
/// unwrapping their way into an abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteError {
    /// The routing key that found no healthy shard.
    pub key: u64,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no healthy shard on the ring for key {}", self.key)
    }
}

impl std::error::Error for RouteError {}

/// A consistent-hash ring over `shards` shards.
#[derive(Debug, Clone)]
pub struct Router {
    /// `(ring position, shard)` sorted by position.
    ring: Vec<(u64, usize)>,
    shards: usize,
    seed: u64,
}

impl Router {
    /// Builds the ring: `vnodes` points per shard, all derived from
    /// `seed`. The same arguments always produce the same ring.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `vnodes` is zero; [`Router::try_new`] is
    /// the typed-error form config validation goes through.
    #[must_use]
    pub fn new(seed: u64, shards: usize, vnodes: usize) -> Self {
        assert!(shards > 0, "a ring needs at least one shard");
        assert!(vnodes > 0, "a ring needs at least one vnode per shard");
        let mut ring = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            // Per-shard stream: adding a shard never moves another
            // shard's vnodes, so scale-out only remaps the keys the
            // new shard takes over.
            let mut rng =
                SplitMix64::new(seed ^ (shard as u64).wrapping_mul(0xA24B_AED4_963E_E407));
            for _ in 0..vnodes {
                ring.push((rng.next_u64(), shard));
            }
        }
        // Position ties (astronomically rare) break by shard index so
        // the ring is canonical.
        ring.sort_unstable();
        Self { ring, shards, seed }
    }

    /// [`Router::new`] with a typed error instead of a panic, for
    /// callers validating user-supplied cluster configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ServeError::Config`] when `shards` or `vnodes`
    /// is zero.
    pub fn try_new(seed: u64, shards: usize, vnodes: usize) -> Result<Self, crate::ServeError> {
        if shards == 0 {
            return Err(crate::ServeError::Config(
                "a ring needs at least one shard".into(),
            ));
        }
        if vnodes == 0 {
            return Err(crate::ServeError::Config(
                "a ring needs at least one vnode per shard".into(),
            ));
        }
        Ok(Self::new(seed, shards, vnodes))
    }

    /// Shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Hashes a routing key onto the ring.
    fn position(&self, key: u64) -> u64 {
        SplitMix64::new(key ^ self.seed).next_u64()
    }

    /// The index of the first ring point at or after `pos` (wrapping).
    fn successor(&self, pos: u64) -> usize {
        match self.ring.binary_search(&(pos, 0)) {
            Ok(i) => i,
            Err(i) if i == self.ring.len() => 0,
            Err(i) => i,
        }
    }

    /// The shard that owns `key`.
    #[must_use]
    pub fn route(&self, key: u64) -> usize {
        self.ring[self.successor(self.position(key))].1
    }

    /// The first shard at or after `key`'s home position for which
    /// `available` holds — the home shard itself when it is healthy,
    /// its ring successor otherwise. `None` when no shard qualifies.
    pub fn route_healthy(
        &self,
        key: u64,
        mut available: impl FnMut(usize) -> bool,
    ) -> Option<usize> {
        let start = self.successor(self.position(key));
        let mut seen = 0u64;
        for i in 0..self.ring.len() {
            let shard = self.ring[(start + i) % self.ring.len()].1;
            let bit = 1u64 << (shard % 64);
            if seen & bit != 0 {
                continue;
            }
            seen |= bit;
            if available(shard) {
                return Some(shard);
            }
        }
        None
    }

    /// [`Router::route_healthy`] with a typed error: `Err(RouteError)`
    /// when every shard is unavailable, so the caller is forced to
    /// handle the cluster-wide-outage case as a shed decision rather
    /// than a panic path.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError`] when no shard satisfies `available`.
    pub fn try_route_healthy(
        &self,
        key: u64,
        available: impl FnMut(usize) -> bool,
    ) -> Result<usize, RouteError> {
        self.route_healthy(key, available).ok_or(RouteError { key })
    }

    /// Probes keys `0..limit` for one that routes to `shard` — how
    /// tests and campaign storms aim a hot key at a chosen shard.
    #[must_use]
    pub fn key_for_shard(&self, shard: usize, limit: u64) -> Option<u64> {
        (0..limit).find(|&k| self.route(k) == shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic() {
        let a = Router::new(42, 4, 16);
        let b = Router::new(42, 4, 16);
        for key in 0..1000 {
            assert_eq!(a.route(key), b.route(key));
        }
    }

    #[test]
    fn every_shard_owns_a_fair_slice() {
        let r = Router::new(7, 4, 64);
        let mut counts = [0u32; 4];
        for key in 0..4000 {
            counts[r.route(key)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            // 4000 keys over 4 shards: each should land near 1000.
            assert!((400..=1800).contains(&c), "shard {s} owns {c} keys");
        }
    }

    #[test]
    fn adding_a_shard_only_moves_its_own_keys() {
        let small = Router::new(11, 3, 32);
        let large = Router::new(11, 4, 32);
        for key in 0..2000 {
            let before = small.route(key);
            let after = large.route(key);
            // A key either stays put or moved to the new shard.
            assert!(
                after == before || after == 3,
                "key {key} moved {before} -> {after}"
            );
        }
    }

    #[test]
    fn unhealthy_shards_fail_over_along_the_ring() {
        let r = Router::new(5, 4, 16);
        for key in 0..500 {
            let home = r.route(key);
            let healthy = r
                .try_route_healthy(key, |s| s != home)
                .expect("three shards remain");
            assert_ne!(healthy, home);
            // With only the home shard down, healthy routing must be
            // stable across calls.
            assert_eq!(r.route_healthy(key, |s| s != home), Some(healthy));
            // A fully healthy cluster routes home.
            assert_eq!(r.route_healthy(key, |_| true), Some(home));
        }
        assert_eq!(r.route_healthy(9, |_| false), None);
    }

    #[test]
    fn an_all_down_cluster_routes_to_a_typed_error() {
        let r = Router::new(5, 4, 16);
        let err = r.try_route_healthy(9, |_| false).unwrap_err();
        assert_eq!(err, RouteError { key: 9 });
        assert!(err.to_string().contains("key 9"));
    }

    #[test]
    fn zero_sized_rings_are_typed_errors() {
        assert!(matches!(
            Router::try_new(1, 0, 16),
            Err(crate::ServeError::Config(_))
        ));
        assert!(matches!(
            Router::try_new(1, 4, 0),
            Err(crate::ServeError::Config(_))
        ));
        let r = Router::try_new(42, 4, 16).expect("valid ring");
        assert_eq!(r.shards(), 4);
        assert_eq!(r.route(7), Router::new(42, 4, 16).route(7));
    }

    #[test]
    fn key_probe_finds_every_shard() {
        let r = Router::new(13, 4, 16);
        for shard in 0..4 {
            let key = r.key_for_shard(shard, 10_000).expect("key exists");
            assert_eq!(r.route(key), shard);
        }
        assert_eq!(Router::new(1, 1, 1).key_for_shard(0, 10), Some(0));
    }
}
