//! The discrete-event serving simulation.
//!
//! [`ServeSim`] runs a deterministic event loop over a pool of
//! simulated EVE engines: requests arrive on a simulated clock, pass
//! admission control ([`crate::queue`]), and are placed on the lowest
//! healthy engine — health meaning the per-engine circuit breaker
//! ([`crate::breaker`]) admits traffic. Detected failures retry with
//! capped exponential backoff ([`crate::backoff`]); exhausted requests
//! fail over to the O3+DV path, which also absorbs traffic whenever
//! every breaker is open. A scripted [`FaultStorm`] perturbs engine
//! health mid-run.
//!
//! Everything runs on a simulated cycle clock — no wall time, no
//! global RNG — so two identically-configured runs produce identical
//! reports byte for byte, regardless of host scheduling.

use crate::backoff::{Backoff, BackoffPolicy};
use crate::breaker::{BreakerPolicy, BreakerState, CircuitBreaker};
use crate::health::{apply_signal, signals};
use crate::profile::ServiceProfile;
use crate::queue::{admit, estimated_wait, AdmissionPolicy, AdmissionView, ShedReason};
use crate::report::{EngineReport, ServeReport};
use crate::storm::{FaultStorm, StormEvent, StormEventKind};
use eve_common::SplitMix64;
use eve_obs::Tracer;
use eve_sim::EngineHealth;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

/// Pool and policy knobs for one serving run.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Engine count.
    pub pool: usize,
    /// Per-engine breaker tuning.
    pub breaker: BreakerPolicy,
    /// Retry-delay schedule.
    pub backoff: BackoffPolicy,
    /// Admission control.
    pub admission: AdmissionPolicy,
    /// Engine dispatch attempts per request (first try included)
    /// before failing over to the O3+DV path.
    pub max_attempts: u32,
    /// Cycles from dispatching onto an already-faulty engine to the
    /// detected failure (the parity/SECDED alarm plus retry exhaustion
    /// at μprogram granularity — far shorter than a full service).
    pub detect_latency: u64,
    /// Whether results are checked (PR 1's shadow verification): a
    /// checked pool converts silent-corruption windows into detected
    /// failures; an unchecked pool completes them as SDCs.
    pub checked: bool,
    /// Seed for per-request backoff jitter streams.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            pool: 4,
            breaker: BreakerPolicy::default(),
            backoff: BackoffPolicy::default(),
            admission: AdmissionPolicy::default(),
            max_attempts: 3,
            detect_latency: 500,
            checked: true,
            seed: 0x5EC0DE,
        }
    }
}

/// The synthetic open-loop arrival process.
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// Requests to generate.
    pub requests: usize,
    /// Mean inter-arrival gap in cycles (gaps are uniform on
    /// `[0, 2·mean]`, so the mean is exact).
    pub mean_gap: u64,
    /// Deadline slack: each request's deadline is its arrival plus
    /// `slack × max(engine, fallback)` solo service time.
    pub deadline_slack: f64,
    /// Seed for arrival times and workload choices.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            requests: 200,
            mean_gap: 2_000,
            deadline_slack: 4.0,
            seed: 0x7AFF1C,
        }
    }
}

/// Why a serving run could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// An invalid configuration value.
    Config(String),
    /// A malformed storm scenario (an event addressing silicon the run
    /// does not have, or a cluster-scoped kind in a single-pool run).
    /// Campaigns turn this into an error row instead of aborting.
    Storm(String),
    /// No healthy shard anywhere on the ring for a routing key — the
    /// all-breakers-open cluster. The event loop converts this into a
    /// shed/fallback decision; it is typed so nothing upstream is
    /// tempted to `unwrap` it into an abort.
    Unroutable(crate::router::RouteError),
    /// A report lacked an expected section (e.g. asking a fault-free
    /// `eve-sim` run for its resilience ladder) — the typed replacement
    /// for `expect`-chaining report extraction.
    Report(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(m) => write!(f, "serve config: {m}"),
            ServeError::Storm(m) => write!(f, "serve storm: {m}"),
            ServeError::Unroutable(e) => write!(f, "serve routing: {e}"),
            ServeError::Report(m) => write!(f, "serve report: {m}"),
        }
    }
}

impl From<crate::router::RouteError> for ServeError {
    fn from(e: crate::router::RouteError) -> Self {
        ServeError::Unroutable(e)
    }
}

impl std::error::Error for ServeError {}

/// Heap events, processed in `(at, seq)` order.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Storm event `idx` fires.
    Storm(usize),
    /// Request `idx` arrives.
    Arrival(usize),
    /// Request `idx` re-enters the queue after backoff.
    Retry(usize),
    /// Request `req`'s dispatch on `engine` resolves.
    Done { engine: usize, req: usize },
    /// Request `req` completes on the fallback path.
    FallbackDone { req: usize },
}

struct Entry {
    at: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// One request's lifecycle state.
struct Request {
    arrival: u64,
    deadline: u64,
    workload: usize,
    attempts: u32,
    backoff: Backoff,
    dispatched_at: u64,
    fault_epoch: u64,
    silent_epoch: u64,
    completed_at: Option<u64>,
    via_fallback: bool,
    corrupted: bool,
}

/// One pool engine's simulated state.
struct Engine {
    breaker: CircuitBreaker,
    busy: bool,
    dead: bool,
    brown_until: u64,
    silent_until: u64,
    /// Bumped on every entry into a detected-fault window (brownout,
    /// kill, recover): a request whose dispatch-time epoch differs at
    /// completion overlapped one.
    fault_epoch: u64,
    /// Same, for silent-corruption windows.
    silent_epoch: u64,
    dispatches: u64,
    completions: u64,
    failures: u64,
}

impl Engine {
    fn faulty_at(&self, now: u64) -> bool {
        self.dead || now < self.brown_until
    }

    fn silent_at(&self, now: u64) -> bool {
        now < self.silent_until
    }
}

/// Per-engine busy-span tracks, capped at eight (pools beyond that are
/// simulated but not span-traced).
const ENGINE_TRACKS: [&str; 8] = [
    "eng0", "eng1", "eng2", "eng3", "eng4", "eng5", "eng6", "eng7",
];

/// The number of engine tracks the tracer can carry.
#[must_use]
pub fn traced_engines(pool: usize) -> usize {
    pool.min(ENGINE_TRACKS.len())
}

/// The serving simulation: build, optionally attach a tracer and
/// initial health, then [`ServeSim::run`].
pub struct ServeSim {
    cfg: ServeConfig,
    profile: ServiceProfile,
    traffic: TrafficConfig,
    tracer: Option<Tracer>,

    heap: BinaryHeap<Entry>,
    seq: u64,
    queue: VecDeque<usize>,
    requests: Vec<Request>,
    engines: Vec<Engine>,
    storm: Vec<StormEvent>,
    fallback_free_at: u64,
    now: u64,

    // Tallies.
    admitted: u64,
    shed_capacity: u64,
    shed_infeasible: u64,
    dispatches: u64,
    engine_failures: u64,
    retries: u64,
    failovers: u64,
    fallback_dispatches: u64,
    completed_eve: u64,
    completed_fallback: u64,
    sdc: u64,
}

impl ServeSim {
    /// Builds a serving run: generates the arrival schedule and seeds
    /// every per-request backoff stream up front, so the run is a pure
    /// function of its arguments.
    ///
    /// # Errors
    ///
    /// Rejects an empty pool, empty profile, zero requests, or zero
    /// `max_attempts` as [`ServeError::Config`].
    pub fn new(
        cfg: ServeConfig,
        profile: ServiceProfile,
        traffic: TrafficConfig,
        storm: FaultStorm,
    ) -> Result<Self, ServeError> {
        if cfg.pool == 0 {
            return Err(ServeError::Config(
                "pool must have at least one engine".into(),
            ));
        }
        if profile.is_empty() {
            return Err(ServeError::Config(
                "service profile has no workloads".into(),
            ));
        }
        if traffic.requests == 0 {
            return Err(ServeError::Config("traffic must carry requests".into()));
        }
        if cfg.max_attempts == 0 {
            return Err(ServeError::Config("max_attempts must be at least 1".into()));
        }
        // A malformed scenario is a typed error, never a mid-run panic:
        // an out-of-range engine would index past the pool inside the
        // event loop, and the cluster-scoped kinds have no meaning on a
        // single pool.
        for (i, e) in storm.events.iter().enumerate() {
            match e.kind {
                StormEventKind::Brownout { .. }
                | StormEventKind::Silent { .. }
                | StormEventKind::Kill
                | StormEventKind::Recover => {
                    if e.engine >= cfg.pool {
                        return Err(ServeError::Storm(format!(
                            "event {i} targets engine {} of a {}-engine pool",
                            e.engine, cfg.pool
                        )));
                    }
                }
                StormEventKind::ShardPartition { .. }
                | StormEventKind::HotKeySkew { .. }
                | StormEventKind::LinkDegrade { .. } => {
                    return Err(ServeError::Storm(format!(
                        "event {i} is cluster-scoped; a single pool has no shards \
                         (use ClusterSim)"
                    )));
                }
            }
        }
        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, e) in storm.events.iter().enumerate() {
            heap.push(Entry {
                at: e.at,
                seq,
                ev: Ev::Storm(i),
            });
            seq += 1;
        }
        let mut rng = SplitMix64::new(traffic.seed);
        let mut at = 0u64;
        let mut requests = Vec::with_capacity(traffic.requests);
        for i in 0..traffic.requests {
            at += rng.below(2 * traffic.mean_gap + 1);
            let workload = rng.below(profile.len() as u64) as usize;
            let solo = profile
                .eve_service(workload, 1)
                .max(profile.fallback_service(workload));
            let slack = (solo as f64 * traffic.deadline_slack).round() as u64;
            requests.push(Request {
                arrival: at,
                deadline: at + slack.max(1),
                workload,
                attempts: 0,
                backoff: Backoff::new(cfg.backoff, cfg.seed.wrapping_add(1 + i as u64)),
                dispatched_at: 0,
                fault_epoch: 0,
                silent_epoch: 0,
                completed_at: None,
                via_fallback: false,
                corrupted: false,
            });
            heap.push(Entry {
                at,
                seq,
                ev: Ev::Arrival(i),
            });
            seq += 1;
        }
        let engines = (0..cfg.pool)
            .map(|_| Engine {
                breaker: CircuitBreaker::new(cfg.breaker),
                busy: false,
                dead: false,
                brown_until: 0,
                silent_until: 0,
                fault_epoch: 0,
                silent_epoch: 0,
                dispatches: 0,
                completions: 0,
                failures: 0,
            })
            .collect();
        Ok(Self {
            cfg,
            profile,
            traffic,
            tracer: None,
            heap,
            seq,
            queue: VecDeque::new(),
            requests,
            engines,
            storm: storm.events,
            fallback_free_at: 0,
            now: 0,
            admitted: 0,
            shed_capacity: 0,
            shed_infeasible: 0,
            dispatches: 0,
            engine_failures: 0,
            retries: 0,
            failovers: 0,
            fallback_dispatches: 0,
            completed_eve: 0,
            completed_fallback: 0,
            sdc: 0,
        })
    }

    /// Attaches a tracer: the run emits `serve`-track instants plus
    /// per-engine busy/fault spans (first eight engines).
    #[must_use]
    pub fn with_tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = Some(tracer.clone());
        self
    }

    /// Applies pre-run health snapshots from the `eve-sim` escalation
    /// ladder — engine `i` boots with `health[i]`'s signals already fed
    /// into its breaker, so a pool can start with a known-degraded
    /// engine isolated before any traffic reaches it.
    #[must_use]
    pub fn with_initial_health(mut self, health: &[EngineHealth]) -> Self {
        for (e, h) in self.engines.iter_mut().zip(health) {
            for s in signals(h) {
                apply_signal(&mut e.breaker, s, 0);
            }
            if h.degraded {
                // A ladder degradation means the engine already fell
                // back to O3+DV: model it as dead silicon.
                e.dead = true;
                e.fault_epoch += 1;
            }
        }
        self
    }

    fn push(&mut self, at: u64, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, ev });
    }

    fn instant(&self, name: &'static str, at: u64) {
        if let Some(t) = &self.tracer {
            t.instant("serve", "serve", name, at);
        }
    }

    fn count(&self, name: &str, amount: u64) {
        if let Some(t) = &self.tracer {
            t.count(name, amount);
        }
    }

    fn busy_engines(&self) -> usize {
        self.engines.iter().filter(|e| e.busy).count()
    }

    /// Runs the event loop to quiescence and produces the report.
    /// Every admitted request resolves before the loop ends (retries
    /// are bounded and the fallback path always completes), so the
    /// heap draining is the termination proof.
    #[must_use]
    pub fn run(mut self) -> ServeReport {
        while let Some(Entry { at, ev, .. }) = self.heap.pop() {
            debug_assert!(at >= self.now, "time runs forward");
            self.now = at;
            match ev {
                Ev::Storm(i) => self.on_storm(i),
                Ev::Arrival(r) => self.on_arrival(r),
                Ev::Retry(r) => {
                    self.instant("retry_due", self.now);
                    self.queue.push_back(r);
                    self.pump();
                }
                Ev::Done { engine, req } => self.on_done(engine, req),
                Ev::FallbackDone { req } => {
                    self.requests[req].completed_at = Some(self.now);
                    self.completed_fallback += 1;
                    self.instant("complete_fallback", self.now);
                }
            }
        }
        self.report()
    }

    fn on_storm(&mut self, i: usize) {
        let ev = self.storm[i];
        let e = &mut self.engines[ev.engine];
        match ev.kind {
            StormEventKind::Brownout { duration } => {
                e.brown_until = e.brown_until.max(self.now + duration.max(1));
                e.fault_epoch += 1;
            }
            StormEventKind::Silent { duration } => {
                e.silent_until = e.silent_until.max(self.now + duration.max(1));
                e.silent_epoch += 1;
            }
            StormEventKind::Kill => {
                if !e.dead {
                    e.dead = true;
                    e.fault_epoch += 1;
                }
            }
            StormEventKind::Recover => {
                e.dead = false;
                e.brown_until = self.now;
                e.silent_until = self.now;
                e.fault_epoch += 1;
            }
            // Cluster-scoped kinds are rejected at construction.
            StormEventKind::ShardPartition { .. }
            | StormEventKind::HotKeySkew { .. }
            | StormEventKind::LinkDegrade { .. } => {}
        }
        // Health changed: waiting work may now be placeable (or the
        // pool may have lost a server — pump is a no-op then).
        self.pump();
    }

    /// The admission estimator's snapshot of the pool, priced for
    /// `workload`. Each queued request is priced by its own workload —
    /// a mean estimate underestimates badly when the queue is
    /// dominated by the heavy tail of a bimodal mix — and scaled by
    /// the contention the pool will see while draining it. When every
    /// breaker is open the only channel is the O3+DV path: the view
    /// prices with fallback service times and folds its FIFO backlog
    /// in, so a dead pool sheds doomed requests instead of admitting
    /// them into a queue they cannot clear in time.
    fn pool_view(&mut self, workload: usize) -> AdmissionView {
        let now = self.now;
        let channels = self
            .engines
            .iter_mut()
            .map(|e| e.breaker.state_at(now))
            .filter(|s| *s != BreakerState::Open)
            .count();
        if channels == 0 {
            let backlog = self.fallback_free_at.saturating_sub(now);
            let queued_cost = backlog
                + self
                    .queue
                    .iter()
                    .map(|&q| self.profile.fallback_service(self.requests[q].workload))
                    .sum::<u64>();
            AdmissionView {
                queued: self.queue.len(),
                queued_cost,
                inflight: 0,
                channels: 1,
                mean_service: self.profile.mean_fallback_cycles(),
                service_estimate: self.profile.fallback_service(workload),
            }
        } else {
            let queued_cost = self
                .queue
                .iter()
                .map(|&q| {
                    self.profile
                        .eve_service(self.requests[q].workload, channels)
                })
                .sum::<u64>();
            AdmissionView {
                queued: self.queue.len(),
                queued_cost,
                inflight: self.engines.iter().filter(|e| e.busy).count()
                    + usize::from(self.fallback_free_at > now),
                channels,
                mean_service: self.profile.mean_eve_cycles(),
                service_estimate: self.profile.eve_service(workload, channels),
            }
        }
    }

    fn on_arrival(&mut self, r: usize) {
        self.instant("arrive", self.now);
        let view = self.pool_view(self.requests[r].workload);
        let req = &self.requests[r];
        match admit(&self.cfg.admission, self.now, req.deadline, &view) {
            Ok(()) => {
                self.admitted += 1;
                self.instant("admit", self.now);
                self.queue.push_back(r);
                self.pump();
            }
            Err(ShedReason::Capacity) => {
                self.shed_capacity += 1;
                self.instant("shed_capacity", self.now);
            }
            Err(ShedReason::Infeasible) => {
                self.shed_infeasible += 1;
                self.instant("shed_infeasible", self.now);
            }
        }
    }

    /// FIFO placement: place the head request on the lowest free
    /// engine whose breaker admits it (closed engines before half-open
    /// probes); if every breaker is open, fail the head over to the
    /// O3+DV path; if engines are merely busy, wait.
    fn pump(&mut self) {
        while let Some(&r) = self.queue.front() {
            let now = self.now;
            let mut pick = None;
            for (i, e) in self.engines.iter_mut().enumerate() {
                if e.busy || !e.breaker.allows(now) {
                    continue;
                }
                let state = e.breaker.state_at(now);
                match (state, pick) {
                    (BreakerState::Closed, _) => {
                        pick = Some(i);
                        break; // lowest closed engine wins outright
                    }
                    (BreakerState::HalfOpen, None) => pick = Some(i),
                    _ => {}
                }
            }
            if let Some(i) = pick {
                self.queue.pop_front();
                self.dispatch(i, r);
                continue;
            }
            let all_open = self
                .engines
                .iter_mut()
                .all(|e| e.breaker.state_at(now) == BreakerState::Open);
            if all_open {
                self.queue.pop_front();
                self.failover(r);
                continue;
            }
            break; // engines busy or probe slot taken: wait
        }
    }

    fn dispatch(&mut self, engine: usize, r: usize) {
        let now = self.now;
        self.dispatches += 1;
        let busy_after = self.busy_engines() + 1;
        let e = &mut self.engines[engine];
        e.breaker.on_dispatch(now);
        e.busy = true;
        e.dispatches += 1;
        let req = &mut self.requests[r];
        req.attempts += 1;
        req.dispatched_at = now;
        req.fault_epoch = e.fault_epoch;
        req.silent_epoch = e.silent_epoch;
        // Dispatching onto already-faulty silicon fast-fails at alarm
        // latency; healthy dispatches run a contention-scaled service.
        let service = if e.faulty_at(now) {
            self.cfg.detect_latency.max(1)
        } else {
            self.profile.eve_service(req.workload, busy_after)
        };
        self.instant("dispatch", now);
        self.push(now + service, Ev::Done { engine, req: r });
    }

    fn on_done(&mut self, engine: usize, r: usize) {
        let now = self.now;
        let e = &mut self.engines[engine];
        e.busy = false;
        let req = &self.requests[r];
        let fault_overlap = req.fault_epoch != e.fault_epoch || e.faulty_at(now);
        let silent_overlap = req.silent_epoch != e.silent_epoch || e.silent_at(now);
        let failed = fault_overlap || (silent_overlap && self.cfg.checked);
        let start = req.dispatched_at;
        if let (Some(t), true) = (&self.tracer, engine < ENGINE_TRACKS.len()) {
            let cat = if failed { "fault" } else { "busy" };
            t.span(ENGINE_TRACKS[engine], cat, "request", start, now - start);
        }
        if failed {
            e.failures += 1;
            e.breaker.on_failure(now);
            self.engine_failures += 1;
            let req = &mut self.requests[r];
            let (attempts, deadline, workload) = (req.attempts, req.deadline, req.workload);
            if attempts < self.cfg.max_attempts {
                let delay = req.backoff.delay(attempts - 1).max(1);
                // Deadline-aware retry routing: only retry if the
                // request could plausibly still start early enough.
                // Re-queueing a nearly-due request behind a heavy
                // backlog guarantees a miss — the fallback at least
                // has a chance.
                let view = self.pool_view(workload);
                let eta = now
                    .saturating_add(delay)
                    .saturating_add(estimated_wait(&view))
                    .saturating_add(view.service_estimate);
                if eta <= deadline {
                    self.retries += 1;
                    self.instant("retry", now);
                    self.push(now + delay, Ev::Retry(r));
                } else {
                    self.failover(r);
                }
            } else {
                self.failover(r);
            }
        } else {
            e.breaker.on_success(now);
            e.completions += 1;
            self.completed_eve += 1;
            if silent_overlap {
                // Unchecked pool: the corruption reaches the caller.
                self.sdc += 1;
                self.requests[r].corrupted = true;
                self.instant("sdc", now);
            }
            self.requests[r].completed_at = Some(now);
            self.instant("complete", now);
        }
        self.pump();
    }

    fn failover(&mut self, r: usize) {
        let now = self.now;
        self.failovers += 1;
        self.fallback_dispatches += 1;
        self.instant("failover", now);
        let req = &mut self.requests[r];
        req.via_fallback = true;
        let start = self.fallback_free_at.max(now);
        let done = start + self.profile.fallback_service(req.workload);
        self.fallback_free_at = done;
        self.push(done, Ev::FallbackDone { req: r });
    }

    fn report(mut self) -> ServeReport {
        let mut sojourns: Vec<u64> = Vec::new();
        let mut late = 0u64;
        let mut served_ok = 0u64;
        for req in &self.requests {
            if let Some(done) = req.completed_at {
                sojourns.push(done - req.arrival);
                let missed = done > req.deadline;
                if missed {
                    late += 1;
                }
                if !missed && !req.corrupted {
                    served_ok += 1;
                }
            }
        }
        sojourns.sort_unstable();
        let pct = |p: f64| -> u64 {
            if sojourns.is_empty() {
                return 0;
            }
            let idx = ((sojourns.len() - 1) as f64 * p).round() as usize;
            sojourns[idx]
        };
        let completed = sojourns.len() as u64;
        let arrivals = self.requests.len() as u64;
        let availability = if self.admitted == 0 {
            1.0
        } else {
            served_ok as f64 / self.admitted as f64
        };
        let eve_attempt_success = if self.dispatches == 0 {
            1.0
        } else {
            self.completed_eve as f64 / self.dispatches as f64
        };
        let goodput = if arrivals == 0 {
            0.0
        } else {
            (completed - late) as f64 / arrivals as f64
        };
        let deadline_miss_rate = if completed == 0 {
            0.0
        } else {
            late as f64 / completed as f64
        };
        let engines: Vec<EngineReport> = self
            .engines
            .iter_mut()
            .map(|e| EngineReport {
                dispatches: e.dispatches,
                completions: e.completions,
                failures: e.failures,
                dead: e.dead,
                final_state: e.breaker.state_at(self.now),
                breaker: e.breaker.stats(),
            })
            .collect();
        // Mirror the tallies into the tracer's counter registry so the
        // auditor can cross-check report against trace.
        self.count("serve.arrivals", arrivals);
        self.count("serve.admitted", self.admitted);
        self.count("serve.shed", self.shed_capacity + self.shed_infeasible);
        self.count("serve.dispatches", self.dispatches);
        self.count("serve.failures", self.engine_failures);
        self.count("serve.retries", self.retries);
        self.count("serve.failovers", self.failovers);
        self.count("serve.completed_eve", self.completed_eve);
        self.count("serve.completed_fallback", self.completed_fallback);
        self.count("serve.sdc", self.sdc);
        ServeReport {
            pool: self.cfg.pool,
            requests: self.traffic.requests as u64,
            end_cycle: self.now,
            arrivals,
            admitted: self.admitted,
            shed_capacity: self.shed_capacity,
            shed_infeasible: self.shed_infeasible,
            dispatches: self.dispatches,
            engine_failures: self.engine_failures,
            retries: self.retries,
            failovers: self.failovers,
            completed_eve: self.completed_eve,
            completed_fallback: self.completed_fallback,
            sdc: self.sdc,
            availability,
            eve_attempt_success,
            goodput,
            deadline_miss_rate,
            p50_sojourn: pct(0.50),
            p99_sojourn: pct(0.99),
            engines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storm::FaultStorm;

    fn quick(pool: usize, storm: FaultStorm) -> ServeReport {
        let cfg = ServeConfig {
            pool,
            seed: 9,
            ..ServeConfig::default()
        };
        let traffic = TrafficConfig {
            requests: 120,
            mean_gap: 500,
            deadline_slack: 6.0,
            seed: 3,
        };
        let profile = ServiceProfile::synthetic(3, 1000, 4000, pool);
        ServeSim::new(cfg, profile, traffic, storm).unwrap().run()
    }

    #[test]
    fn a_calm_pool_serves_everything_in_eve_mode() {
        let r = quick(4, FaultStorm::none());
        assert_eq!(r.arrivals, 120);
        assert_eq!(r.admitted + r.shed_capacity + r.shed_infeasible, 120);
        assert_eq!(r.completed_eve + r.completed_fallback, r.admitted);
        assert_eq!(r.engine_failures, 0);
        assert_eq!(r.failovers, 0);
        assert_eq!(r.sdc, 0);
        assert!((r.availability - 1.0).abs() < 1e-12);
        assert!(r.p99_sojourn >= r.p50_sojourn);
    }

    #[test]
    fn runs_are_deterministic() {
        let storm = FaultStorm::synth(5, 4, 400_000, 1.5);
        let a = quick(4, storm.clone());
        let b = quick(4, storm);
        assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
    }

    #[test]
    fn a_killed_engine_is_isolated_and_work_reroutes() {
        let r = quick(4, FaultStorm::kill_one(1, 50_000));
        // The dead engine accumulated failures, tripped its breaker,
        // and everything still completed.
        assert!(r.engines[1].failures > 0);
        assert!(r.engines[1].breaker.opened >= 1);
        assert_eq!(r.completed_eve + r.completed_fallback, r.admitted);
        assert!(r.availability >= 0.99);
        assert_eq!(r.sdc, 0);
        // Conservation: every dispatch either completed or failed.
        assert_eq!(r.dispatches, r.completed_eve + r.engine_failures);
    }

    #[test]
    fn a_single_dead_engine_pool_fails_over_to_o3dv() {
        let r = quick(1, FaultStorm::kill_one(0, 0));
        assert!(r.failovers > 0, "all traffic must fail over");
        assert_eq!(r.completed_eve, 0);
        assert_eq!(r.completed_fallback, r.admitted);
        // The whole pool is dead: admission must shed hard (the O3+DV
        // path is ~8x slower than the offered load), and most of what
        // it does admit must still be served in deadline. Half-open
        // probe windows re-admit a little optimistically, so this is
        // not a 0.99 scenario — that bar belongs to pools with
        // surviving engines.
        assert!(r.shed_infeasible > 50, "a dead pool must shed load");
        assert!(r.availability >= 0.85);
        assert_eq!(r.sdc, 0);
    }

    #[test]
    fn unchecked_pools_pass_silent_corruption_through() {
        let storm = FaultStorm {
            events: vec![crate::storm::StormEvent {
                at: 10_000,
                engine: 0,
                kind: StormEventKind::Silent { duration: 200_000 },
            }],
        };
        let mk = |checked: bool| {
            let cfg = ServeConfig {
                pool: 2,
                checked,
                seed: 9,
                ..ServeConfig::default()
            };
            let traffic = TrafficConfig {
                requests: 100,
                mean_gap: 800,
                deadline_slack: 8.0,
                seed: 3,
            };
            ServeSim::new(
                cfg,
                ServiceProfile::synthetic(2, 1000, 4000, 2),
                traffic,
                storm.clone(),
            )
            .unwrap()
            .run()
        };
        let unchecked = mk(false);
        assert!(unchecked.sdc > 0, "silent windows must corrupt results");
        let checked = mk(true);
        assert_eq!(checked.sdc, 0, "checking converts SDCs into retries");
        assert!(checked.engine_failures > 0);
    }

    #[test]
    fn overload_sheds_instead_of_collapsing() {
        let cfg = ServeConfig {
            pool: 1,
            seed: 1,
            ..ServeConfig::default()
        };
        // Arrivals far faster than one engine can serve.
        let traffic = TrafficConfig {
            requests: 300,
            mean_gap: 50,
            deadline_slack: 3.0,
            seed: 8,
        };
        let r = ServeSim::new(
            cfg,
            ServiceProfile::synthetic(1, 2000, 6000, 1),
            traffic,
            FaultStorm::none(),
        )
        .unwrap()
        .run();
        assert!(
            r.shed_capacity + r.shed_infeasible > 0,
            "overload must shed"
        );
        // Admitted requests still all complete.
        assert_eq!(r.completed_eve + r.completed_fallback, r.admitted);
    }

    #[test]
    fn initial_degraded_health_pre_isolates_an_engine() {
        let h = EngineHealth {
            degraded: true,
            ..EngineHealth::default()
        };
        let cfg = ServeConfig {
            pool: 2,
            seed: 4,
            ..ServeConfig::default()
        };
        let traffic = TrafficConfig {
            requests: 50,
            mean_gap: 2_000,
            deadline_slack: 6.0,
            seed: 2,
        };
        let r = ServeSim::new(
            cfg,
            ServiceProfile::synthetic(1, 1000, 4000, 2),
            traffic,
            FaultStorm::none(),
        )
        .unwrap()
        .with_initial_health(&[h, EngineHealth::default()])
        .run();
        // Engine 0 booted open; the probe after cooldown fast-fails,
        // but engine 1 carries the traffic.
        assert!(r.engines[1].completions > 0);
        assert!(r.engines[0].completions == 0);
        assert_eq!(r.completed_eve + r.completed_fallback, r.admitted);
    }

    #[test]
    fn malformed_storms_are_typed_errors_not_panics() {
        let profile = ServiceProfile::synthetic(1, 100, 200, 2);
        // An event addressing engine 7 of a 2-engine pool used to
        // index out of bounds inside the event loop.
        let out_of_range = FaultStorm::kill_one(7, 1_000);
        let err = ServeSim::new(
            ServeConfig {
                pool: 2,
                ..ServeConfig::default()
            },
            profile.clone(),
            TrafficConfig::default(),
            out_of_range,
        )
        .err()
        .unwrap();
        assert!(matches!(err, ServeError::Storm(_)), "{err}");
        assert!(err.to_string().contains("engine 7"));
        // Cluster-scoped kinds have no meaning on a single pool.
        for storm in [
            FaultStorm::partition(0, 0, 100),
            FaultStorm::hot_key(3, 0, 100),
        ] {
            let err = ServeSim::new(
                ServeConfig::default(),
                profile.clone(),
                TrafficConfig::default(),
                storm,
            )
            .err()
            .unwrap();
            assert!(matches!(err, ServeError::Storm(_)), "{err}");
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let profile = ServiceProfile::synthetic(1, 100, 200, 1);
        let bad_pool = ServeConfig {
            pool: 0,
            ..ServeConfig::default()
        };
        assert!(ServeSim::new(
            bad_pool,
            profile.clone(),
            TrafficConfig::default(),
            FaultStorm::none()
        )
        .is_err());
        let bad_attempts = ServeConfig {
            max_attempts: 0,
            ..ServeConfig::default()
        };
        assert!(ServeSim::new(
            bad_attempts,
            profile,
            TrafficConfig::default(),
            FaultStorm::none()
        )
        .is_err());
    }
}
