//! Admission control and load shedding.
//!
//! A request is refused at arrival — never after it has consumed an
//! engine — for one of two reasons: the queue is at capacity, or the
//! deadline-feasibility bound says it cannot finish in time. The bound
//! prices the work ahead of the newcomer: the queued requests' summed
//! service estimates (each priced by its own workload — a mean would
//! underestimate badly when the queue is dominated by the heavy tail
//! of a bimodal workload mix) plus a mean-service charge per in-flight
//! request, spread over the `s` serving channels. If `now + ahead/s +
//! service` lands past the deadline, admitting the request would only
//! burn engine time on a guaranteed miss and push every later request
//! closer to its own miss — shedding it is what keeps goodput from
//! collapsing under overload.

/// Why a request was refused at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The queue is at capacity.
    Capacity,
    /// The feasibility bound says the deadline cannot be met.
    Infeasible,
}

impl ShedReason {
    /// Stable string form for reports.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            ShedReason::Capacity => "capacity",
            ShedReason::Infeasible => "infeasible",
        }
    }
}

/// Admission knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Hard cap on queued (not yet dispatched) requests.
    pub queue_capacity: usize,
    /// Whether the feasibility bound sheds at all; capacity shedding
    /// always applies.
    pub shed_infeasible: bool,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            shed_infeasible: true,
        }
    }
}

/// The instantaneous system state the admission decision reads.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionView {
    /// Requests waiting in the queue.
    pub queued: usize,
    /// Total estimated cycles of queued work ahead of the newcomer,
    /// each request priced by its own workload (plus any fallback
    /// backlog, expressed directly in cycles).
    pub queued_cost: u64,
    /// Requests currently occupying engines or the fallback.
    pub inflight: usize,
    /// Serving channels that would accept a dispatch right now
    /// (breaker not open); the fallback path counts as one.
    pub channels: usize,
    /// Mean service time per request; in-flight requests are charged
    /// half of it (their expected residual life) when the pool is
    /// saturated.
    pub mean_service: u64,
    /// This request's estimated service time, in cycles.
    pub service_estimate: u64,
}

/// Decides whether to admit a request arriving at `now` with absolute
/// `deadline`.
///
/// # Errors
///
/// Returns the [`ShedReason`] when the request should be refused.
pub fn admit(
    policy: &AdmissionPolicy,
    now: u64,
    deadline: u64,
    view: &AdmissionView,
) -> Result<(), ShedReason> {
    if view.queued >= policy.queue_capacity {
        return Err(ShedReason::Capacity);
    }
    if policy.shed_infeasible {
        let eta = now
            .saturating_add(estimated_wait(view))
            .saturating_add(view.service_estimate);
        if eta > deadline {
            return Err(ShedReason::Infeasible);
        }
    }
    Ok(())
}

/// Estimated cycles until a newcomer would start service.
///
/// A free channel with no queued work means it starts immediately —
/// in-flight requests on *other* channels cost it nothing. Only when
/// every channel is occupied (or work is queued) does the backlog
/// matter; in-flight requests are then charged half a mean service
/// (their expected residual life). The serving loop reuses this for
/// deadline-aware retry routing: a failed request whose retry cannot
/// start early enough fails over instead of queueing for a miss.
#[must_use]
pub fn estimated_wait(view: &AdmissionView) -> u64 {
    if view.queued_cost == 0 && view.inflight < view.channels {
        return 0;
    }
    let residual = (view.inflight as u64).saturating_mul(view.mean_service / 2);
    view.queued_cost.saturating_add(residual) / view.channels.max(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle(service: u64) -> AdmissionView {
        AdmissionView {
            queued: 0,
            queued_cost: 0,
            inflight: 0,
            channels: 4,
            mean_service: service,
            service_estimate: service,
        }
    }

    #[test]
    fn an_idle_pool_admits_feasible_requests() {
        let p = AdmissionPolicy::default();
        assert_eq!(admit(&p, 100, 100 + 2000, &idle(1000)), Ok(()));
    }

    #[test]
    fn a_full_queue_sheds_on_capacity() {
        let p = AdmissionPolicy {
            queue_capacity: 2,
            ..AdmissionPolicy::default()
        };
        let view = AdmissionView {
            queued: 2,
            ..idle(10)
        };
        assert_eq!(admit(&p, 0, u64::MAX, &view), Err(ShedReason::Capacity));
    }

    #[test]
    fn an_unmeetable_deadline_sheds_as_infeasible() {
        let p = AdmissionPolicy::default();
        // Even with nothing ahead, service alone overshoots.
        assert_eq!(
            admit(&p, 100, 100 + 500, &idle(1000)),
            Err(ShedReason::Infeasible)
        );
    }

    #[test]
    fn backlog_makes_deadlines_infeasible() {
        let p = AdmissionPolicy::default();
        let view = AdmissionView {
            queued: 8,
            queued_cost: 8_000,
            inflight: 4,
            channels: 4,
            mean_service: 1000,
            service_estimate: 1000,
        };
        // eta = 0 + (8000 + 4*500)/4 + 1000 = 3500.
        assert_eq!(admit(&p, 0, 3499, &view), Err(ShedReason::Infeasible));
        assert_eq!(admit(&p, 0, 3500, &view), Ok(()));
    }

    #[test]
    fn a_free_channel_waives_the_inflight_charge() {
        // Three of four channels busy, nothing queued: the newcomer
        // dispatches immediately, so only its own service counts.
        let p = AdmissionPolicy::default();
        let view = AdmissionView {
            queued: 0,
            queued_cost: 0,
            inflight: 3,
            channels: 4,
            mean_service: 100_000,
            service_estimate: 500,
        };
        assert_eq!(admit(&p, 0, 500, &view), Ok(()));
        // A fully-occupied pool charges the residual work.
        let saturated = AdmissionView {
            inflight: 4,
            ..view
        };
        assert_eq!(admit(&p, 0, 500, &saturated), Err(ShedReason::Infeasible));
    }

    #[test]
    fn heavy_queued_work_outweighs_its_count() {
        // Two queued requests, but they are heavy-tail jobs: a mean
        // estimate would admit, the per-workload cost does not.
        let p = AdmissionPolicy::default();
        let view = AdmissionView {
            queued: 2,
            queued_cost: 200_000,
            inflight: 0,
            channels: 1,
            mean_service: 1_000,
            service_estimate: 500,
        };
        assert_eq!(admit(&p, 0, 10_000, &view), Err(ShedReason::Infeasible));
    }

    #[test]
    fn the_feasibility_gate_can_be_disabled() {
        let p = AdmissionPolicy {
            shed_infeasible: false,
            ..AdmissionPolicy::default()
        };
        assert_eq!(admit(&p, 100, 100, &idle(1000)), Ok(()));
    }

    #[test]
    fn zero_channels_do_not_divide_by_zero() {
        let p = AdmissionPolicy::default();
        let view = AdmissionView {
            queued: 1,
            queued_cost: 10,
            inflight: 0,
            channels: 0,
            mean_service: 10,
            service_estimate: 10,
        };
        assert_eq!(admit(&p, 0, 5, &view), Err(ShedReason::Infeasible));
    }
}
