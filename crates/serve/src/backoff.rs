//! Capped exponential retry backoff with deterministic jitter.
//!
//! A failed dispatch re-enters the queue only after a backoff delay, so
//! a struggling engine pool is not hammered by its own retries. The
//! schedule is the classic capped exponential — `base · factor^attempt`
//! clamped to `cap` — plus a jitter term drawn from a [`SplitMix64`]
//! stream seeded per request. Jitter decorrelates retry waves (the
//! thundering-herd fix) while staying *deterministic*: the same seed
//! always yields the same schedule, so serve campaigns reproduce
//! byte-identically regardless of event interleaving.

use eve_common::SplitMix64;

/// The retry-delay schedule knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in cycles.
    pub base: u64,
    /// Multiplier applied per additional attempt.
    pub factor: u64,
    /// Upper bound on the exponential term, in cycles.
    pub cap: u64,
    /// Jitter span: a uniform draw from `[0, jitter]` cycles is added
    /// to every delay (0 disables jitter).
    pub jitter: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            base: 64,
            factor: 2,
            cap: 4096,
            jitter: 32,
        }
    }
}

impl BackoffPolicy {
    /// The deterministic (jitter-free) exponential term for `attempt`
    /// (0-based: attempt 0 is the first retry).
    #[must_use]
    pub fn raw_delay(&self, attempt: u32) -> u64 {
        let mut d = self.base.max(1);
        for _ in 0..attempt {
            d = d.saturating_mul(self.factor.max(1));
            if d >= self.cap {
                return self.cap;
            }
        }
        d.min(self.cap)
    }
}

/// One request's backoff stream: the policy plus a private RNG.
///
/// Seed it from `(campaign seed, request id)` so the schedule depends
/// only on the request, never on global event order — two identically
/// seeded runs produce identical delays even if their heaps pop ties
/// differently.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: BackoffPolicy,
    rng: SplitMix64,
}

impl Backoff {
    /// A backoff stream for one request.
    #[must_use]
    pub fn new(policy: BackoffPolicy, seed: u64) -> Self {
        Self {
            policy,
            rng: SplitMix64::new(seed),
        }
    }

    /// The delay before retry number `attempt` (0-based), jitter
    /// included. Always draws exactly one RNG value, so streams stay
    /// aligned across attempts.
    pub fn delay(&mut self, attempt: u32) -> u64 {
        let jitter = self.rng.below(self.policy.jitter + 1);
        self.policy.raw_delay(attempt) + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_delays_double_then_cap() {
        let p = BackoffPolicy {
            base: 10,
            factor: 2,
            cap: 100,
            jitter: 0,
        };
        assert_eq!(p.raw_delay(0), 10);
        assert_eq!(p.raw_delay(1), 20);
        assert_eq!(p.raw_delay(2), 40);
        assert_eq!(p.raw_delay(3), 80);
        assert_eq!(p.raw_delay(4), 100, "capped");
        assert_eq!(p.raw_delay(30), 100, "stays capped, no overflow");
    }

    #[test]
    fn huge_attempts_do_not_overflow() {
        let p = BackoffPolicy {
            base: u64::MAX / 2,
            factor: u64::MAX,
            cap: u64::MAX,
            jitter: 0,
        };
        assert_eq!(p.raw_delay(63), u64::MAX);
    }

    #[test]
    fn jitter_is_bounded() {
        let p = BackoffPolicy {
            base: 10,
            factor: 2,
            cap: 1000,
            jitter: 7,
        };
        let mut b = Backoff::new(p, 42);
        for attempt in 0..20 {
            let d = b.delay(attempt);
            let raw = p.raw_delay(attempt);
            assert!(d >= raw && d <= raw + 7, "attempt {attempt}: {d}");
        }
    }

    #[test]
    fn identically_seeded_schedules_are_identical() {
        // Satellite requirement: backoff-schedule determinism across
        // two identically-seeded runs.
        let p = BackoffPolicy::default();
        let mut a = Backoff::new(p, 0xC0FFEE);
        let mut b = Backoff::new(p, 0xC0FFEE);
        let sa: Vec<u64> = (0..64).map(|i| a.delay(i)).collect();
        let sb: Vec<u64> = (0..64).map(|i| b.delay(i)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let p = BackoffPolicy {
            jitter: 1 << 20,
            ..BackoffPolicy::default()
        };
        let mut a = Backoff::new(p, 1);
        let mut b = Backoff::new(p, 2);
        let same = (0..32).filter(|_| a.delay(0) == b.delay(0)).count();
        assert!(same < 4, "jitter streams should diverge: {same} collisions");
    }

    /// Property sweep: 200 random policies × random seeds, checking on
    /// every attempt that (a) the exponential term never exceeds the
    /// cap, (b) the jitter component stays inside `[0, jitter]`, and
    /// (c) the full schedule replays byte-identically from the same
    /// seed. Policies are drawn from a seeded stream, so the sweep
    /// itself is reproducible.
    #[test]
    fn property_delays_are_capped_banded_and_deterministic() {
        let mut gen = SplitMix64::new(0xBACC0FF);
        for case in 0..200 {
            let p = BackoffPolicy {
                base: gen.below(1 << 12) + 1,
                factor: gen.below(6) + 1,
                cap: gen.below(1 << 16) + 1,
                jitter: gen.below(1 << 10),
            };
            let seed = gen.next_u64();
            let mut a = Backoff::new(p, seed);
            let mut b = Backoff::new(p, seed);
            for attempt in 0..24 {
                let raw = p.raw_delay(attempt);
                assert!(raw <= p.cap, "case {case}: raw {raw} exceeds cap {}", p.cap);
                let da = a.delay(attempt);
                assert!(
                    da >= raw && da - raw <= p.jitter,
                    "case {case} attempt {attempt}: jitter {} outside [0, {}]",
                    da - raw,
                    p.jitter
                );
                assert_eq!(da, b.delay(attempt), "case {case}: schedule diverged");
            }
        }
    }

    /// The cap property holds exactly when `base <= cap` (the sane
    /// configuration): no attempt count, however large, escapes it.
    #[test]
    fn property_cap_is_never_exceeded_for_sane_policies() {
        let mut gen = SplitMix64::new(0x5EED);
        for _ in 0..100 {
            let cap = gen.below(1 << 14) + 1;
            let p = BackoffPolicy {
                base: gen.below(cap) + 1,
                factor: gen.below(8) + 1,
                cap,
                jitter: 0,
            };
            for attempt in [0, 1, 2, 7, 31, 63, 200] {
                assert!(p.raw_delay(attempt) <= cap);
            }
        }
    }

    #[test]
    fn zero_jitter_is_exact() {
        let p = BackoffPolicy {
            base: 5,
            factor: 3,
            cap: 50,
            jitter: 0,
        };
        let mut b = Backoff::new(p, 9);
        assert_eq!(b.delay(0), 5);
        assert_eq!(b.delay(1), 15);
        assert_eq!(b.delay(2), 45);
        assert_eq!(b.delay(3), 50);
    }
}
