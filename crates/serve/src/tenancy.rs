//! Fair-share multi-tenancy: per-tenant queues drained by weighted
//! deficit round-robin.
//!
//! Each shard keeps one FIFO per tenant instead of one global queue,
//! so a tenant that floods the cluster queues behind itself, not in
//! front of everyone else. Draining follows classic WDRR: tenants earn
//! deficit in proportion to their weight each round, and a tenant may
//! dispatch while its deficit covers the head request's estimated
//! cost. Heavier tenants therefore drain proportionally faster under
//! contention, but no backlogged tenant is ever starved — every
//! replenish round credits all of them.
//!
//! The implementation replenishes analytically (it computes how many
//! whole rounds are needed for the first affordable head and credits
//! them in one step), so a drain decision is `O(tenants)` and exactly
//! reproducible regardless of how costs and weights interact.

use std::collections::VecDeque;

/// One tenant's identity and fair-share weight.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Display name, used in reports.
    pub name: String,
    /// Fair-share weight: a weight-4 tenant drains four times the
    /// cycles of a weight-1 tenant under contention.
    pub weight: u32,
    /// Relative share of generated traffic (normalized over the mix).
    pub share: f64,
}

/// A standard mix for campaigns and tests: `n` tenants with equal
/// traffic shares and weights cycling 4, 2, 1 — heavy, medium, light.
#[must_use]
pub fn tenant_mix(n: usize) -> Vec<TenantSpec> {
    (0..n.max(1))
        .map(|i| TenantSpec {
            name: format!("t{i}"),
            weight: [4u32, 2, 1][i % 3],
            share: 1.0,
        })
        .collect()
}

/// Per-tenant FIFOs with WDRR drain state for one shard.
#[derive(Debug, Clone)]
pub struct TenantQueues {
    queues: Vec<VecDeque<usize>>,
    deficits: Vec<u64>,
    weights: Vec<u64>,
    /// Cycles credited per weight unit per replenish round; sized to a
    /// mean request so a weight-1 tenant earns about one dispatch per
    /// round.
    quantum: u64,
    /// The tenant the drain cursor points at.
    cursor: usize,
    len: usize,
}

impl TenantQueues {
    /// Empty queues for `weights.len()` tenants.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty (a shard needs at least one
    /// tenant).
    #[must_use]
    pub fn new(weights: &[u32], quantum: u64) -> Self {
        assert!(!weights.is_empty(), "at least one tenant required");
        Self {
            queues: vec![VecDeque::new(); weights.len()],
            deficits: vec![0; weights.len()],
            weights: weights.iter().map(|&w| u64::from(w.max(1))).collect(),
            quantum: quantum.max(1),
            cursor: 0,
            len: 0,
        }
    }

    /// Queued requests across all tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued requests for one tenant.
    #[must_use]
    pub fn tenant_len(&self, tenant: usize) -> usize {
        self.queues[tenant].len()
    }

    /// Enqueues a request for `tenant`.
    pub fn push(&mut self, tenant: usize, req: usize) {
        self.queues[tenant].push_back(req);
        self.len += 1;
    }

    /// Iterates `(tenant, request)` over everything queued, in tenant
    /// order then FIFO order — the admission estimator prices with
    /// this.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.queues
            .iter()
            .enumerate()
            .flat_map(|(t, q)| q.iter().map(move |&r| (t, r)))
    }

    /// Pops the next request under WDRR: starting at the cursor, the
    /// first tenant whose deficit covers its head's `cost` dispatches;
    /// if none can afford, every backlogged tenant is credited the
    /// minimal number of whole rounds (`weight × quantum` each) that
    /// makes one affordable. Emptied tenants forfeit their deficit, so
    /// credit never banks across idle periods.
    pub fn pop_next(&mut self, mut cost: impl FnMut(usize) -> u64) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        let n = self.queues.len();
        // Costs of each backlogged head, cursor order.
        let mut best: Option<(u64, usize)> = None; // (rounds needed, tenant)
        for k in 0..n {
            let t = (self.cursor + k) % n;
            let Some(&head) = self.queues[t].front() else {
                self.deficits[t] = 0;
                continue;
            };
            let c = cost(head).max(1);
            let earn = self.weights[t] * self.quantum;
            let rounds = if self.deficits[t] >= c {
                0
            } else {
                (c - self.deficits[t]).div_ceil(earn)
            };
            // Strict `<` keeps cursor order authoritative on ties.
            if best.is_none_or(|(r, _)| rounds < r) {
                best = Some((rounds, t));
            }
            if rounds == 0 {
                break;
            }
        }
        let (rounds, t) = best?;
        if rounds > 0 {
            for u in 0..n {
                if !self.queues[u].is_empty() {
                    self.deficits[u] =
                        self.deficits[u].saturating_add(rounds * self.weights[u] * self.quantum);
                }
            }
        }
        let head = self.queues[t].pop_front()?;
        let c = cost(head).max(1);
        self.deficits[t] = self.deficits[t].saturating_sub(c);
        self.len -= 1;
        if self.queues[t].is_empty() {
            self.deficits[t] = 0;
            self.cursor = (t + 1) % n;
        } else {
            // Stay on this tenant while its deficit lasts (classic DRR
            // serves a tenant's burst within its round).
            self.cursor = t;
        }
        Some((t, head))
    }

    /// Removes up to `max` further queued requests of `tenant` for
    /// which `matches` holds, preserving the relative order of what
    /// remains — the batch coalescer pulls same-kernel riders with
    /// this.
    pub fn extract_matching(
        &mut self,
        tenant: usize,
        max: usize,
        mut matches: impl FnMut(usize) -> bool,
    ) -> Vec<usize> {
        let mut taken = Vec::new();
        if max == 0 {
            return taken;
        }
        let q = &mut self.queues[tenant];
        let mut kept = VecDeque::with_capacity(q.len());
        while let Some(r) = q.pop_front() {
            if taken.len() < max && matches(r) {
                taken.push(r);
            } else {
                kept.push_back(r);
            }
        }
        *q = kept;
        self.len -= taken.len();
        if self.queues[tenant].is_empty() {
            self.deficits[tenant] = 0;
        }
        taken
    }

    /// Removes one specific queued request of `tenant`, preserving the
    /// order of everything else — the transport layer's
    /// first-response-wins cancellation pulls a superseded copy out of
    /// the losing shard's queue with this. Returns whether the request
    /// was still queued (a copy already dispatched into a batch cannot
    /// be cancelled).
    pub fn remove(&mut self, tenant: usize, req: usize) -> bool {
        let q = &mut self.queues[tenant];
        let Some(pos) = q.iter().position(|&r| r == req) else {
            return false;
        };
        q.remove(pos);
        self.len -= 1;
        if q.is_empty() {
            self.deficits[tenant] = 0;
        }
        true
    }

    /// Removes up to `n` requests round-robin across tenants (FIFO
    /// within each) — the work-stealing path drains a dead shard's
    /// backlog with this, touching every backlogged tenant fairly.
    pub fn drain_upto(&mut self, n: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let tenants = self.queues.len();
        while out.len() < n && self.len > 0 {
            for t in 0..tenants {
                if out.len() >= n {
                    break;
                }
                if let Some(r) = self.queues[t].pop_front() {
                    self.len -= 1;
                    if self.queues[t].is_empty() {
                        self.deficits[t] = 0;
                    }
                    out.push((t, r));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_standard_mix_cycles_weights() {
        let mix = tenant_mix(5);
        assert_eq!(mix.len(), 5);
        assert_eq!(
            mix.iter().map(|t| t.weight).collect::<Vec<_>>(),
            vec![4, 2, 1, 4, 2]
        );
        assert_eq!(tenant_mix(0).len(), 1);
    }

    #[test]
    fn single_tenant_degenerates_to_fifo() {
        let mut q = TenantQueues::new(&[1], 100);
        for r in 0..5 {
            q.push(0, r);
        }
        let order: Vec<usize> =
            std::iter::from_fn(|| q.pop_next(|_| 100).map(|(_, r)| r)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn weights_split_equal_cost_drain_proportionally() {
        // Tenants 0 (weight 3) and 1 (weight 1), both deeply
        // backlogged with unit-cost requests: over 40 pops tenant 0
        // should get about 30.
        let mut q = TenantQueues::new(&[3, 1], 100);
        for r in 0..40 {
            q.push(0, r);
            q.push(1, 100 + r);
        }
        let mut counts = [0usize; 2];
        for _ in 0..40 {
            let (t, _) = q.pop_next(|_| 100).unwrap();
            counts[t] += 1;
        }
        assert!(
            (27..=33).contains(&counts[0]),
            "weight-3 tenant drained {} of 40",
            counts[0]
        );
    }

    #[test]
    fn no_backlogged_tenant_is_starved() {
        // Heavy tenant floods with cheap work; light tenant has a few
        // expensive requests. The light tenant must still drain within
        // a bounded number of pops.
        let mut q = TenantQueues::new(&[8, 1], 100);
        for r in 0..200 {
            q.push(0, r);
        }
        for r in 0..4 {
            q.push(1, 1000 + r);
        }
        let mut light_done = 0;
        for pops in 1..=204 {
            let (t, _) = q.pop_next(|r| if r >= 1000 { 800 } else { 100 }).unwrap();
            if t == 1 {
                light_done += 1;
            }
            if light_done == 4 {
                assert!(pops <= 204, "light tenant starved");
                break;
            }
        }
        assert_eq!(light_done, 4);
    }

    #[test]
    fn deficit_resets_when_a_queue_empties() {
        let mut q = TenantQueues::new(&[1, 1], 10);
        q.push(0, 1);
        assert_eq!(q.pop_next(|_| 1000), Some((0, 1)));
        // Tenant 0 banked nothing: after going idle and returning, it
        // pays full price again rather than bursting ahead of 1.
        q.push(1, 2);
        q.push(0, 3);
        let (first, _) = q.pop_next(|_| 1000).unwrap();
        assert_eq!(first, 1, "cursor moved past the emptied tenant");
    }

    #[test]
    fn extract_matching_preserves_leftover_order() {
        let mut q = TenantQueues::new(&[1], 10);
        for r in [1, 2, 3, 4, 5] {
            q.push(0, r);
        }
        let taken = q.extract_matching(0, 2, |r| r % 2 == 0);
        assert_eq!(taken, vec![2, 4]);
        assert_eq!(q.len(), 3);
        let rest: Vec<usize> = std::iter::from_fn(|| q.pop_next(|_| 1).map(|(_, r)| r)).collect();
        assert_eq!(rest, vec![1, 3, 5]);
    }

    #[test]
    fn remove_cancels_one_copy_and_keeps_order() {
        let mut q = TenantQueues::new(&[1, 1], 10);
        for r in [1, 2, 3] {
            q.push(0, r);
        }
        q.push(1, 9);
        assert!(q.remove(0, 2), "queued copy cancels");
        assert!(!q.remove(0, 2), "a cancelled copy is gone");
        assert!(!q.remove(1, 777), "unknown request is a miss");
        assert_eq!(q.len(), 3);
        let rest: Vec<(usize, usize)> = std::iter::from_fn(|| q.pop_next(|_| 1)).collect();
        assert_eq!(rest, vec![(0, 1), (0, 3), (1, 9)]);
        // Emptying a tenant via remove forfeits its deficit.
        q.push(1, 5);
        assert!(q.remove(1, 5));
        assert!(q.is_empty());
    }

    #[test]
    fn drain_alternates_tenants() {
        let mut q = TenantQueues::new(&[1, 1, 1], 10);
        for r in 0..3 {
            q.push(0, r);
            q.push(1, 10 + r);
        }
        let stolen = q.drain_upto(4);
        assert_eq!(stolen, vec![(0, 0), (1, 10), (0, 1), (1, 11)]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.drain_upto(100).len(), 2);
        assert!(q.is_empty());
        assert!(q.drain_upto(5).is_empty());
    }
}
