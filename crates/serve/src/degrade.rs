//! The cluster's graceful-degradation ladder.
//!
//! A cluster under fault pressure should shed *features*, then
//! *tenants*, then *the accelerator itself* — in that order — rather
//! than letting queues grow until every deadline misses. The ladder
//! tracks three windowed pressure signals (dispatch failure rate,
//! backlog ratio, unavailable-shard fraction) and maps them onto four
//! service levels:
//!
//! | level | meaning |
//! |-------|---------|
//! | `Full` | normal service: retries on, default batching |
//! | `BatchOnly` | retries off (failures go straight to fallback), batch ceiling doubled — trade tail latency for throughput |
//! | `ShedLowWeight` | additionally refuse new work from the lowest-weight tenant class at admission |
//! | `FallbackOnly` | brownout: no EVE dispatches at all, everything runs on the O3+DV fallback path |
//!
//! Transitions move one level at a time, are held back by a dwell-time
//! hysteresis so a single bad window cannot flap the cluster, and are
//! recorded as [`LadderEvent`]s — every step is traced, counted, and
//! audited, because an unexplained brownout is itself an availability
//! bug.
//!
//! Where the unavailable-shard signal comes from depends on the
//! transport model. With the lossy interconnect enabled
//! (`ClusterConfig::net`), a shard counts as unavailable when the
//! heartbeat failure detector *suspects* it — link silence observed
//! from missed acks — rather than from a scripted `partition_until`
//! window; suspicion gates routing and raises this ladder signal but
//! deliberately does not open circuit breakers, because a silent link
//! says nothing about the silicon behind it (see "Lossy interconnect
//! & exactly-once dispatch" in DESIGN.md).

/// Cluster service level, ordered from full service to brownout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServiceLevel {
    /// Normal service.
    Full = 0,
    /// Retries disabled, batch ceiling doubled.
    BatchOnly = 1,
    /// Additionally shed lowest-weight tenants at admission.
    ShedLowWeight = 2,
    /// All requests served on the O3+DV fallback path.
    FallbackOnly = 3,
}

impl ServiceLevel {
    /// All levels, in order.
    pub const ALL: [ServiceLevel; 4] = [
        ServiceLevel::Full,
        ServiceLevel::BatchOnly,
        ServiceLevel::ShedLowWeight,
        ServiceLevel::FallbackOnly,
    ];

    /// Stable lowercase name for reports and traces.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ServiceLevel::Full => "full",
            ServiceLevel::BatchOnly => "batch_only",
            ServiceLevel::ShedLowWeight => "shed_low_weight",
            ServiceLevel::FallbackOnly => "fallback_only",
        }
    }

    fn from_index(i: usize) -> Self {
        Self::ALL[i.min(3)]
    }
}

/// Thresholds driving ladder transitions. Index `i` of each array is
/// the threshold that, when exceeded, argues for level `i + 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderPolicy {
    /// Width of the sliding window the failure rate is measured over,
    /// in cycles.
    pub window: u64,
    /// Minimum cycles between transitions (hysteresis).
    pub dwell: u64,
    /// Windowed dispatch-failure-rate thresholds.
    pub fail_rate: [f64; 3],
    /// Backlog thresholds as a fraction of total queue capacity.
    pub backlog: [f64; 3],
    /// Unavailable-shard-fraction thresholds. The first is above 0.25
    /// on purpose: a 4-shard cluster tolerates one dead shard without
    /// leaving full service.
    pub unavailable: [f64; 3],
}

impl Default for LadderPolicy {
    fn default() -> Self {
        Self {
            window: 64_000,
            dwell: 16_000,
            fail_rate: [0.10, 0.30, 0.60],
            backlog: [0.60, 0.80, 0.95],
            unavailable: [0.30, 0.55, 0.80],
        }
    }
}

/// A sliding-window event counter: eight buckets of `window / 8`
/// cycles each, recycled in place. Sums are exact over the last seven
/// full buckets plus the current one — deterministic and O(1), which
/// matters more here than bucket-edge precision. Shared with the
/// elastic controller's thrash guard ([`crate::elastic`]).
#[derive(Debug, Clone)]
pub(crate) struct WindowCounter {
    width: u64,
    tags: [u64; 8],
    vals: [u64; 8],
}

impl WindowCounter {
    pub(crate) fn new(window: u64) -> Self {
        Self {
            width: (window / 8).max(1),
            tags: [u64::MAX; 8],
            vals: [0; 8],
        }
    }

    pub(crate) fn add(&mut self, now: u64, n: u64) {
        let bucket = now / self.width;
        let slot = (bucket % 8) as usize;
        if self.tags[slot] != bucket {
            self.tags[slot] = bucket;
            self.vals[slot] = 0;
        }
        self.vals[slot] += n;
    }

    pub(crate) fn sum(&self, now: u64) -> u64 {
        let bucket = now / self.width;
        let oldest = bucket.saturating_sub(7);
        (0..8)
            .filter(|&s| self.tags[s] >= oldest && self.tags[s] <= bucket)
            .map(|s| self.vals[s])
            .sum()
    }
}

/// One recorded ladder transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderEvent {
    /// When the transition happened.
    pub at: u64,
    /// Level before.
    pub from: ServiceLevel,
    /// Level after.
    pub to: ServiceLevel,
}

/// The degradation ladder: windowed pressure metrics plus the current
/// service level and its transition history.
#[derive(Debug, Clone)]
pub struct Ladder {
    policy: LadderPolicy,
    level: ServiceLevel,
    dispatches: WindowCounter,
    failures: WindowCounter,
    last_change: u64,
    level_entered: u64,
    /// Cycles accumulated at each level (finalized by [`Ladder::finish`]).
    time_at: [u64; 4],
    events: Vec<LadderEvent>,
}

impl Ladder {
    /// A ladder starting at [`ServiceLevel::Full`] at cycle 0.
    #[must_use]
    pub fn new(policy: LadderPolicy) -> Self {
        Self {
            policy,
            level: ServiceLevel::Full,
            dispatches: WindowCounter::new(policy.window),
            failures: WindowCounter::new(policy.window),
            last_change: 0,
            level_entered: 0,
            time_at: [0; 4],
            events: Vec::new(),
        }
    }

    /// Current service level.
    #[must_use]
    pub fn level(&self) -> ServiceLevel {
        self.level
    }

    /// Recorded transitions, in order.
    #[must_use]
    pub fn events(&self) -> &[LadderEvent] {
        &self.events
    }

    /// Transitions to a stricter level.
    #[must_use]
    pub fn step_downs(&self) -> u64 {
        self.events.iter().filter(|e| e.to > e.from).count() as u64
    }

    /// Transitions back toward full service.
    #[must_use]
    pub fn step_ups(&self) -> u64 {
        self.events.iter().filter(|e| e.to < e.from).count() as u64
    }

    /// Records an EVE dispatch at `now` (batch of any size counts
    /// once — the ladder watches dispatch health, not throughput).
    pub fn observe_dispatch(&mut self, now: u64) {
        self.dispatches.add(now, 1);
    }

    /// Records a failed dispatch at `now`.
    pub fn observe_failure(&mut self, now: u64) {
        self.failures.add(now, 1);
    }

    /// Windowed dispatch failure rate at `now`.
    #[must_use]
    pub fn failure_rate(&self, now: u64) -> f64 {
        let d = self.dispatches.sum(now);
        if d == 0 {
            0.0
        } else {
            self.failures.sum(now) as f64 / d as f64
        }
    }

    /// Re-evaluates the ladder against current pressure. `backlog` is
    /// queued work over total queue capacity; `unavailable` is the
    /// fraction of shards currently unroutable. Moves at most one
    /// level per call, and only after the dwell time has elapsed.
    pub fn evaluate(&mut self, now: u64, backlog: f64, unavailable: f64) -> Option<LadderEvent> {
        if now < self.last_change + self.policy.dwell {
            return None;
        }
        let fail = self.failure_rate(now);
        // Target = deepest level any signal argues for.
        let mut target = 0usize;
        for i in 0..3 {
            if fail > self.policy.fail_rate[i]
                || backlog > self.policy.backlog[i]
                || unavailable > self.policy.unavailable[i]
            {
                target = i + 1;
            }
        }
        let cur = self.level as usize;
        if target == cur {
            return None;
        }
        // One rung at a time, both directions: recovery is as gradual
        // as degradation so a half-healed cluster is not re-flooded.
        let next = if target > cur { cur + 1 } else { cur - 1 };
        let ev = LadderEvent {
            at: now,
            from: self.level,
            to: ServiceLevel::from_index(next),
        };
        self.time_at[cur] += now - self.level_entered;
        self.level = ev.to;
        self.last_change = now;
        self.level_entered = now;
        self.events.push(ev);
        Some(ev)
    }

    /// Closes the books at `end`: returns cycles spent at each level,
    /// including the open stretch at the current one.
    #[must_use]
    pub fn finish(&mut self, end: u64) -> [u64; 4] {
        self.time_at[self.level as usize] += end.saturating_sub(self.level_entered);
        self.level_entered = end;
        self.time_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_policy() -> LadderPolicy {
        LadderPolicy {
            window: 8_000,
            dwell: 1_000,
            ..LadderPolicy::default()
        }
    }

    #[test]
    fn calm_cluster_stays_at_full() {
        let mut l = Ladder::new(quick_policy());
        for now in (0..50_000).step_by(500) {
            l.observe_dispatch(now);
            assert_eq!(l.evaluate(now, 0.1, 0.0), None);
        }
        assert_eq!(l.level(), ServiceLevel::Full);
        assert!(l.events().is_empty());
    }

    #[test]
    fn failure_burst_steps_down_one_rung_at_a_time() {
        let mut l = Ladder::new(quick_policy());
        // 100% failure rate argues for FallbackOnly, but the ladder
        // must pass through the intermediate rungs.
        for now in (0..20_000u64).step_by(100) {
            l.observe_dispatch(now);
            l.observe_failure(now);
            l.evaluate(now, 0.0, 0.0);
        }
        assert_eq!(l.level(), ServiceLevel::FallbackOnly);
        let downs: Vec<_> = l.events().to_vec();
        assert_eq!(downs.len(), 3);
        for (i, e) in downs.iter().enumerate() {
            assert_eq!(e.from as usize, i);
            assert_eq!(e.to as usize, i + 1);
        }
    }

    #[test]
    fn recovery_steps_back_up() {
        let mut l = Ladder::new(quick_policy());
        for now in (0..10_000u64).step_by(100) {
            l.observe_dispatch(now);
            l.observe_failure(now);
            l.evaluate(now, 0.0, 0.0);
        }
        let floor = l.level();
        assert!(floor > ServiceLevel::Full);
        // Healthy traffic ages the failure window out; the ladder
        // climbs back to Full one rung at a time.
        for now in (10_000u64..60_000).step_by(100) {
            l.observe_dispatch(now);
            l.evaluate(now, 0.0, 0.0);
        }
        assert_eq!(l.level(), ServiceLevel::Full);
        assert_eq!(l.step_downs(), l.step_ups());
        assert!(l.step_ups() >= 1);
    }

    #[test]
    fn dwell_time_prevents_flapping() {
        let mut l = Ladder::new(LadderPolicy {
            window: 8_000,
            dwell: 50_000,
            ..LadderPolicy::default()
        });
        for now in (0..40_000u64).step_by(100) {
            l.observe_dispatch(now);
            l.observe_failure(now);
            l.evaluate(now, 0.0, 0.0);
        }
        // Inside one dwell window only the first transition lands.
        assert!(l.events().len() <= 1, "dwell must rate-limit transitions");
    }

    #[test]
    fn unavailability_alone_can_walk_the_ladder() {
        let mut l = Ladder::new(quick_policy());
        let mut stepped = 0;
        for now in (0..20_000u64).step_by(500) {
            if l.evaluate(now, 0.0, 0.5).is_some() {
                stepped += 1;
            }
        }
        assert_eq!(l.level(), ServiceLevel::BatchOnly, "0.5 > t0 only");
        assert_eq!(stepped, 1);
        // One dead shard of four (0.25) does NOT leave full service.
        let mut calm = Ladder::new(quick_policy());
        for now in (0..20_000u64).step_by(500) {
            assert_eq!(calm.evaluate(now, 0.0, 0.25), None);
        }
    }

    #[test]
    fn time_accounting_covers_the_whole_run() {
        let mut l = Ladder::new(quick_policy());
        for now in (0..10_000u64).step_by(100) {
            l.observe_dispatch(now);
            l.observe_failure(now);
            l.evaluate(now, 0.0, 0.0);
        }
        let t = l.finish(10_000);
        assert_eq!(t.iter().sum::<u64>(), 10_000);
        assert!(t[0] > 0, "started at Full");
    }

    #[test]
    fn window_counter_ages_out() {
        let mut w = WindowCounter::new(8_000);
        w.add(100, 5);
        assert_eq!(w.sum(100), 5);
        assert_eq!(w.sum(7_900), 5, "still inside the window");
        assert_eq!(w.sum(100_000), 0, "aged out");
    }
}
