//! Engine health signals: the bridge from the `eve-sim` escalation
//! ladder to the serving layer's circuit breakers.
//!
//! PR 4's `ShadowChecker` climbs correct → retry → remap → way-disable
//! → degrade. Each rung the ladder visits is evidence about the
//! underlying silicon, and the serving layer wants that evidence
//! *before* requests start failing: a remap-exhausted engine is one
//! persistent error away from degradation, and a degraded engine is
//! already serving from the O3+DV fallback. [`signals`] flattens an
//! [`EngineHealth`] snapshot into discrete [`HealthSignal`]s, and
//! [`apply_signal`] feeds one into a breaker.

use crate::breaker::CircuitBreaker;
use crate::sim::ServeError;
use eve_sim::EngineHealth;

/// One discrete health observation about an engine, ordered roughly
/// benign → terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthSignal {
    /// SECDED corrected errors in place — informational only.
    Corrected,
    /// Bounded re-execution was needed.
    Retried,
    /// Rows were retired to spares.
    Remapped,
    /// The spare-row budget is spent.
    RemapExhausted,
    /// The engine rebuilt itself on fresh physical ways.
    WayDisabled,
    /// The engine fell off the ladder into O3+DV degradation.
    Degraded,
}

impl HealthSignal {
    /// Stable string form for reports.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthSignal::Corrected => "corrected",
            HealthSignal::Retried => "retried",
            HealthSignal::Remapped => "remapped",
            HealthSignal::RemapExhausted => "remap_exhausted",
            HealthSignal::WayDisabled => "way_disabled",
            HealthSignal::Degraded => "degraded",
        }
    }
}

/// Flattens a ladder snapshot into the signals it implies, worst last.
#[must_use]
pub fn signals(h: &EngineHealth) -> Vec<HealthSignal> {
    let mut out = Vec::new();
    if h.corrected > 0 {
        out.push(HealthSignal::Corrected);
    }
    if h.stages.retried > 0 {
        out.push(HealthSignal::Retried);
    }
    if h.remapped_rows > 0 {
        out.push(HealthSignal::Remapped);
    }
    if h.remap_exhausted && h.remapped_rows > 0 {
        out.push(HealthSignal::RemapExhausted);
    }
    if h.ways_disabled > 0 {
        out.push(HealthSignal::WayDisabled);
    }
    if h.degraded {
        out.push(HealthSignal::Degraded);
    }
    out
}

/// Feeds one signal into an engine's breaker at simulated time `now`.
///
/// Corrections, retries, and in-budget remaps are the ladder working
/// as designed — they never touch the breaker. A way disable or an
/// exhausted remap budget counts as a failure (the engine is running
/// out of margins), and a degradation trips the breaker outright: the
/// engine has already stopped serving in EVE mode.
pub fn apply_signal(breaker: &mut CircuitBreaker, signal: HealthSignal, now: u64) {
    match signal {
        HealthSignal::Corrected | HealthSignal::Retried | HealthSignal::Remapped => {}
        HealthSignal::RemapExhausted | HealthSignal::WayDisabled => breaker.on_failure(now),
        HealthSignal::Degraded => breaker.force_open(now),
    }
}

/// Extracts the engine-health snapshot from an `eve-sim` run report
/// with a typed error instead of an `expect` chain: only faulty runs
/// carry a resilience section, and a caller wiring reports into
/// breakers should handle the fault-free case as data, not a panic.
///
/// # Errors
///
/// Returns [`ServeError::Report`] when the report has no resilience
/// section.
pub fn engine_health(report: &eve_sim::RunReport) -> Result<EngineHealth, ServeError> {
    report
        .resilience
        .as_ref()
        .map(eve_sim::ResilienceReport::health)
        .ok_or_else(|| {
            ServeError::Report(format!(
                "run report for {} carries no resilience section (not a faulty run)",
                report.workload
            ))
        })
}

/// Whether an engine slot is a sane spawn target for the elastic
/// controller at `now`: not currently faulty, and its breaker is not
/// open (an open breaker is accumulated evidence the silicon under
/// that slot is bad — donating L2 ways to it would pay the flush cost
/// just to roll the spawn back).
pub fn spawn_target_ok(breaker: &mut CircuitBreaker, faulty: bool, now: u64) -> bool {
    !faulty && breaker.state_at(now) != crate::breaker::BreakerState::Open
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::{BreakerPolicy, BreakerState};
    use eve_sim::EngineHealth;

    fn healthy() -> EngineHealth {
        EngineHealth::default()
    }

    #[test]
    fn a_clean_engine_emits_nothing() {
        assert!(signals(&healthy()).is_empty());
    }

    #[test]
    fn degradation_is_worst_and_last() {
        let mut h = healthy();
        h.corrected = 3;
        h.remapped_rows = 1;
        h.degraded = true;
        let s = signals(&h);
        assert_eq!(s.last(), Some(&HealthSignal::Degraded));
        assert!(s.contains(&HealthSignal::Corrected));
        assert!(s.contains(&HealthSignal::Remapped));
    }

    #[test]
    fn benign_signals_leave_the_breaker_closed() {
        let mut b = CircuitBreaker::new(BreakerPolicy::default());
        for s in [
            HealthSignal::Corrected,
            HealthSignal::Retried,
            HealthSignal::Remapped,
        ] {
            apply_signal(&mut b, s, 0);
        }
        assert_eq!(b.state_at(0), BreakerState::Closed);
    }

    #[test]
    fn a_degradation_trips_the_breaker() {
        let mut b = CircuitBreaker::new(BreakerPolicy::default());
        apply_signal(&mut b, HealthSignal::Degraded, 5);
        assert_eq!(b.state_at(5), BreakerState::Open);
    }

    #[test]
    fn margin_loss_counts_as_failures() {
        let mut b = CircuitBreaker::new(BreakerPolicy {
            failure_threshold: 2,
            ..BreakerPolicy::default()
        });
        apply_signal(&mut b, HealthSignal::WayDisabled, 0);
        assert_eq!(b.state_at(0), BreakerState::Closed);
        apply_signal(&mut b, HealthSignal::RemapExhausted, 1);
        assert_eq!(b.state_at(1), BreakerState::Open);
    }

    #[test]
    fn spawn_targets_need_health_and_a_quiet_breaker() {
        let mut b = CircuitBreaker::new(BreakerPolicy::default());
        assert!(spawn_target_ok(&mut b, false, 0));
        assert!(!spawn_target_ok(&mut b, true, 0), "faulty slot");
        b.force_open(0);
        assert!(!spawn_target_ok(&mut b, false, 1), "open breaker");
    }

    /// End-to-end: a real `eve-sim` faulty run's report, converted to
    /// health signals, trips a breaker — the PR 4 ladder actually feeds
    /// the serving layer.
    #[test]
    fn a_real_degraded_run_trips_a_breaker() {
        use eve_sim::{RecoveryPolicy, Runner};
        use eve_sram::{Fault, FaultConfig};
        use eve_workloads::Workload;

        // The stuck source cell from the eve-sim sparing test: vvadd
        // sources are < 2^20, so stuck-at-one on bit 30 of source row
        // v1 perturbs every operand reload, and the default policy has
        // no spares — retries exhaust and the run degrades.
        let mut cfg = FaultConfig::none(7);
        cfg.scripted.push(Fault::stuck_at(1, 0, 30, true));
        let report = Runner::new()
            .run_faulty(32, &Workload::vvadd(300), cfg, RecoveryPolicy::default())
            .expect("degraded runs still report");
        let h = engine_health(&report).expect("faulty runs carry resilience");
        assert!(h.degraded);
        let mut b = CircuitBreaker::new(BreakerPolicy::default());
        for s in signals(&h) {
            apply_signal(&mut b, s, 100);
        }
        assert_eq!(b.state_at(100), BreakerState::Open);
    }

    /// A fault-free run has no resilience section: extraction is a
    /// typed [`ServeError::Report`], not a panic path.
    #[test]
    fn a_clean_run_yields_a_typed_report_error() {
        use eve_sim::{Runner, SystemKind};
        use eve_workloads::Workload;

        let report = Runner::new()
            .run(SystemKind::EveN(32), &Workload::vvadd(100))
            .expect("clean run");
        let err = engine_health(&report).unwrap_err();
        assert!(matches!(err, ServeError::Report(_)));
        assert!(err.to_string().contains("no resilience section"));
    }
}
