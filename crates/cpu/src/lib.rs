//! Scalar core timing models: the in-order **IO** and out-of-order
//! **O3** baselines of Table III.
//!
//! Both models are *trace-driven*: they consume the committed
//! instruction stream from `eve-isa`'s functional interpreter and
//! charge cycles, owning a private `eve-mem` hierarchy for memory
//! timing. The O3 model exposes a [`VectorUnit`] socket; plugging in an
//! IV, DV, or EVE unit (from `eve-vector` / `eve-core`) produces the
//! paper's O3+IV, O3+DV, and O3+EVE systems.
//!
//! # Examples
//!
//! ```
//! use eve_cpu::{IoCore, O3Core};
//! use eve_isa::{Asm, Interpreter, Memory, xreg};
//!
//! let mut asm = Asm::new();
//! asm.li(xreg::T0, 1000);
//! asm.label("l");
//! asm.addi(xreg::T0, xreg::T0, -1);
//! asm.bnez(xreg::T0, "l");
//! asm.halt();
//! let prog = asm.assemble()?;
//!
//! let mut interp = Interpreter::new(prog.clone(), Memory::new(4096), 4);
//! let mut io = IoCore::new();
//! while let Some(r) = interp.step()? {
//!     io.retire(&r).expect("scalar program");
//! }
//! let io_cycles = io.finish();
//!
//! let mut interp = Interpreter::new(prog, Memory::new(4096), 4);
//! let mut o3 = O3Core::scalar();
//! while let Some(r) = interp.step()? {
//!     o3.retire(&r).expect("scalar program");
//! }
//! assert!(o3.finish() < io_cycles, "o3 overlaps what io serializes");
//! # Ok::<(), eve_isa::IsaError>(())
//! ```

pub mod branch;
pub mod io;
pub mod o3;
pub mod vector_if;

pub use branch::BranchPredictor;
pub use io::IoCore;
pub use o3::{O3Config, O3Core};
pub use vector_if::{EngineError, NoVector, VectorPlacement, VectorUnit};

/// Base address instruction fetches are mapped to (a code region
/// disjoint from workload data, so I-cache and D-cache traffic do not
/// alias).
pub const CODE_BASE: u64 = 0x4000_0000;
