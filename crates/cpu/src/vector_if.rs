//! The socket a vector unit plugs into the O3 control processor.
//!
//! The paper's three vector systems attach differently (Table III,
//! §V-A): the integrated unit (IV) executes vector instructions inside
//! the O3 window on shared pipes; the decoupled engine (DV) and EVE
//! receive instructions at *commit* and run them asynchronously,
//! responding later — with `vmv.x.s`-style writebacks and `vmfence`
//! stalling commit until the unit answers.

use std::fmt;

use eve_common::{Cycle, Stats};
use eve_isa::Retired;
use eve_mem::Hierarchy;
use eve_obs::Tracer;

/// A fault the engine or control processor detected while handling a
/// vector instruction. These used to abort the process; they now
/// propagate to the caller so a simulation driver can report the
/// failing configuration (or degrade gracefully) instead of dying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A vector instruction reached a unit with no μprogram mapping
    /// for it.
    UnmappedInstruction {
        /// Debug rendering of the offending instruction.
        inst: String,
        /// Program counter (instruction index) where it retired.
        pc: u64,
    },
    /// A vector instruction reached a scalar-only core.
    NoVectorUnit {
        /// Debug rendering of the offending instruction.
        inst: String,
        /// Program counter (instruction index) where it retired.
        pc: u64,
    },
    /// The unit was asked for a writeback value it never produced.
    UnexpectedWriteback {
        /// Debug rendering of the offending instruction.
        inst: String,
        /// Program counter (instruction index) where it retired.
        pc: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnmappedInstruction { inst, pc } => {
                write!(
                    f,
                    "no μprogram mapping for vector instruction {inst} at pc {pc}"
                )
            }
            Self::NoVectorUnit { inst, pc } => {
                write!(
                    f,
                    "scalar core received vector instruction {inst} at pc {pc}"
                )
            }
            Self::UnexpectedWriteback { inst, pc } => {
                write!(f, "unit produced no writeback for {inst} at pc {pc}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// How a vector instruction lands in the control processor's timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectorPlacement {
    /// Executed inside the O3 window like a scalar instruction,
    /// completing at the given time (integrated vector unit).
    InWindow {
        /// When the result (and any destination register) is ready.
        completion: Cycle,
    },
    /// Accepted by a decoupled engine at `accept` (commit unblocks
    /// then); if `writeback` is set, commit additionally stalls until
    /// the engine responds with a value (e.g. `vmv.x.s`, `vmfence`).
    Decoupled {
        /// When the engine accepted the instruction (queue back-pressure
        /// pushes this out).
        accept: Cycle,
        /// Response time for instructions the core must wait on.
        writeback: Option<Cycle>,
    },
}

/// A vector unit pluggable into [`crate::O3Core`].
pub trait VectorUnit {
    /// Hardware vector length in 32-bit elements (what `vsetvl`
    /// saturates to; drives the interpreter configuration).
    fn hw_vl(&self) -> u32;

    /// Offers a vector instruction to the unit. `ready` is when its
    /// register dependences resolve in the O3 window (what an
    /// integrated, out-of-order-issue unit keys on); `commit` is when
    /// the instruction reaches the head of the ROB (when a decoupled
    /// engine receives it, §V-A).
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] when the unit cannot handle the
    /// instruction (no mapping, or no unit at all).
    fn issue(
        &mut self,
        r: &Retired,
        ready: Cycle,
        commit: Cycle,
        mem: &mut Hierarchy,
    ) -> Result<VectorPlacement, EngineError>;

    /// Completes all outstanding work, returning the time the unit
    /// goes idle.
    fn drain(&mut self, mem: &mut Hierarchy) -> Cycle;

    /// Unit-specific statistics.
    fn stats(&self) -> Stats;

    /// Hands the unit a tracer handle so it can emit structured trace
    /// events. The default is a no-op: units without instrumentation
    /// (or builds without the `obs` feature) ignore it.
    fn attach_tracer(&mut self, _tracer: &Tracer) {}
}

/// The absent vector unit: scalar-only O3.
///
/// Vector instructions are rejected with a typed error — a scalar
/// baseline fed a vectorized binary is a harness bug, but one the
/// driver should report rather than die on.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoVector;

impl VectorUnit for NoVector {
    fn hw_vl(&self) -> u32 {
        1
    }

    fn issue(
        &mut self,
        r: &Retired,
        _ready: Cycle,
        _commit: Cycle,
        _mem: &mut Hierarchy,
    ) -> Result<VectorPlacement, EngineError> {
        Err(EngineError::NoVectorUnit {
            inst: format!("{:?}", r.inst),
            pc: u64::from(r.pc),
        })
    }

    fn drain(&mut self, _mem: &mut Hierarchy) -> Cycle {
        Cycle::ZERO
    }

    fn stats(&self) -> Stats {
        Stats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_vector_reports_scalar_length() {
        assert_eq!(NoVector.hw_vl(), 1);
        assert!(NoVector.stats().is_empty());
    }
}
