//! The out-of-order core (Table III "O3") and its vector socket.
//!
//! A trace-scheduling model of an 8-wide out-of-order machine: each
//! committed instruction is assigned a dispatch slot (bounded by fetch
//! width, ROB occupancy, and branch-mispredict redirects), starts
//! executing when its register dependences resolve, and commits in
//! order. Loads time through the `eve-mem` hierarchy at *execute* time,
//! so independent misses overlap — the memory-level parallelism that
//! separates O3 from IO.
//!
//! Vector instructions are delegated to the plugged-in
//! [`VectorUnit`]: in-window units (IV) return a
//! completion like any ALU; decoupled units (DV, EVE) receive the
//! instruction at commit and only `vmv.x.s`-style writebacks or
//! `vmfence` stall the core (§V-A).

use crate::branch::BranchPredictor;
use crate::vector_if::{EngineError, NoVector, VectorPlacement, VectorUnit};
use crate::CODE_BASE;
use eve_common::{Cycle, Stats};
use eve_isa::{Inst, MemEffect, RegId, Retired, ScalarOp};
use eve_mem::{Hierarchy, HierarchyConfig, Level};
use eve_obs::Tracer;
use std::collections::VecDeque;

/// O3 pipeline parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct O3Config {
    /// Dispatch/commit width per cycle.
    pub width: u64,
    /// Reorder-buffer capacity.
    pub window: usize,
    /// Cycles lost on a branch mispredict.
    pub mispredict_penalty: u64,
    /// Multiplier latency.
    pub mul_latency: u64,
    /// Divider latency.
    pub div_latency: u64,
}

impl Default for O3Config {
    fn default() -> Self {
        Self {
            width: 8,
            window: 192,
            mispredict_penalty: 12,
            mul_latency: 3,
            div_latency: 20,
        }
    }
}

/// The out-of-order core, generic over its vector unit.
#[derive(Debug)]
pub struct O3Core<V: VectorUnit = NoVector> {
    cfg: O3Config,
    mem: Hierarchy,
    vu: V,
    reg_ready: [Cycle; 64],
    commit_ring: VecDeque<Cycle>,
    last_commit: Cycle,
    dispatch_cycle: Cycle,
    dispatch_count: u64,
    fetch_floor: Cycle,
    bp: BranchPredictor,
    end: Cycle,
    stats: Stats,
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    tracer: Option<Tracer>,
}

impl O3Core<NoVector> {
    /// A scalar-only O3 core with the Table III hierarchy.
    #[must_use]
    pub fn scalar() -> Self {
        Self::with_unit(NoVector, HierarchyConfig::table_iii())
    }
}

impl<V: VectorUnit> O3Core<V> {
    /// An O3 core with the given vector unit and memory configuration.
    #[must_use]
    pub fn with_unit(vu: V, mem_cfg: HierarchyConfig) -> Self {
        Self::with_unit_and_hierarchy(vu, Hierarchy::new(mem_cfg))
    }

    /// An O3 core over a prebuilt hierarchy — the CMP path, where the
    /// hierarchy's LLC handle is shared with other cores.
    #[must_use]
    pub fn with_unit_and_hierarchy(vu: V, mem: Hierarchy) -> Self {
        Self {
            cfg: O3Config::default(),
            mem,
            vu,
            reg_ready: [Cycle::ZERO; 64],
            commit_ring: VecDeque::new(),
            last_commit: Cycle::ZERO,
            dispatch_cycle: Cycle::ZERO,
            dispatch_count: 0,
            fetch_floor: Cycle::ZERO,
            bp: BranchPredictor::new(4096),
            end: Cycle::ZERO,
            stats: Stats::new(),
            tracer: None,
        }
    }

    /// Overrides the pipeline parameters.
    pub fn set_config(&mut self, cfg: O3Config) {
        self.cfg = cfg;
    }

    /// Attaches a tracer to the core, its hierarchy, and its vector
    /// unit. Retired instructions then emit dispatch→commit spans on
    /// the `o3` track (when built with the `obs` feature).
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.mem.set_tracer(tracer);
        self.vu.attach_tracer(tracer);
        self.tracer = Some(tracer.clone());
    }

    /// The plugged-in vector unit.
    #[must_use]
    pub fn vector_unit(&self) -> &V {
        &self.vu
    }

    /// Mutable access to the plugged-in vector unit (reconfiguration,
    /// fault-recovery actions like retiring EVE ways).
    pub fn vector_unit_mut(&mut self) -> &mut V {
        &mut self.vu
    }

    /// The hardware vector length the attached unit provides.
    #[must_use]
    pub fn hw_vl(&self) -> u32 {
        self.vu.hw_vl()
    }

    fn reg_slot(r: RegId) -> usize {
        match r {
            RegId::X(x) => x.index() as usize,
            RegId::V(v) => 32 + v.index() as usize,
        }
    }

    fn dispatch_slot(&mut self) -> Cycle {
        let mut d = self.dispatch_cycle.max(self.fetch_floor);
        if d > self.dispatch_cycle {
            self.dispatch_cycle = d;
            self.dispatch_count = 0;
        }
        // ROB full: wait for the oldest in-flight instruction to commit.
        if self.commit_ring.len() >= self.cfg.window {
            let oldest = self.commit_ring.pop_front().expect("nonempty");
            if oldest > d {
                self.stats
                    .add("rob_stall_cycles", oldest.saturating_since(d).0);
                d = oldest;
                self.dispatch_cycle = d;
                self.dispatch_count = 0;
            }
        }
        if self.dispatch_count >= self.cfg.width {
            d += Cycle(1);
            self.dispatch_cycle = d;
            self.dispatch_count = 0;
        }
        self.dispatch_count += 1;
        d
    }

    fn deps_ready(&self, r: &Retired, after: Cycle) -> Cycle {
        let mut t = after;
        for dep in r.reads.iter().flatten() {
            t = t.max(self.reg_ready[Self::reg_slot(*dep)]);
        }
        t
    }

    /// Accounts one committed instruction.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] from the vector unit when a vector
    /// instruction cannot be handled (no unit, no μprogram mapping).
    pub fn retire(&mut self, r: &Retired) -> Result<(), EngineError> {
        self.stats.incr("insts");
        let d = self.dispatch_slot();
        let ready = self.deps_ready(r, d);

        let completion;
        let mut commit_floor = Cycle::ZERO;
        // Resolve time of a mispredicted branch, for the redirect
        // instant (emitted after this instruction's span so the `o3`
        // track stays monotone).
        let mut _redirect_at: Option<Cycle> = None;

        if r.inst.is_vector() && !matches!(r.inst, Inst::SetVl { .. }) {
            self.stats.incr("vector_insts");
            // Vector instructions reach decoupled units at commit time
            // (§V-A); integrated units issue when dependences resolve.
            let commit_est = ready.max(self.last_commit);
            match self.vu.issue(r, ready, commit_est, &mut self.mem)? {
                VectorPlacement::InWindow { completion: c } => {
                    completion = c;
                }
                VectorPlacement::Decoupled { accept, writeback } => {
                    completion = ready + Cycle(1);
                    commit_floor = accept;
                    if let Some(wb) = writeback {
                        commit_floor = commit_floor.max(wb);
                        self.stats.incr("vector_writeback_stalls");
                    }
                }
            }
        } else {
            completion = match (&r.inst, &r.mem) {
                (
                    _,
                    MemEffect::Scalar {
                        addr, store: false, ..
                    },
                ) => {
                    self.stats.incr("loads");
                    self.mem.access(Level::L1D, *addr, false, ready).complete
                }
                (_, MemEffect::Scalar { store: true, .. }) => {
                    self.stats.incr("stores");
                    // Stores execute at commit; charged below.
                    ready + Cycle(1)
                }
                (Inst::Op { op, .. } | Inst::OpImm { op, .. }, _) => match op {
                    ScalarOp::Mul => ready + Cycle(self.cfg.mul_latency),
                    ScalarOp::Div | ScalarOp::Rem => ready + Cycle(self.cfg.div_latency),
                    _ => ready + Cycle(1),
                },
                (Inst::Branch { .. } | Inst::Jump { .. }, _) => {
                    let resolve = ready + Cycle(1);
                    if let Some((taken, _)) = r.branch {
                        let predicted = match r.inst {
                            Inst::Jump { .. } => true,
                            _ => self.bp.predict(r.pc),
                        };
                        self.bp.update(r.pc, taken);
                        if predicted != taken {
                            self.stats.incr("mispredicts");
                            self.fetch_floor = resolve + Cycle(self.cfg.mispredict_penalty);
                            _redirect_at = Some(resolve);
                        }
                    }
                    resolve
                }
                _ => ready + Cycle(1),
            };
        }

        // I-cache: charge one fetch access per line transition, folded
        // into the fetch floor.
        let fetch_addr = CODE_BASE + u64::from(r.pc) * 4;
        if r.seq.is_multiple_of(16) {
            let f = self.mem.access(Level::L1I, fetch_addr, false, d);
            if f.hit_level != Level::L1I {
                self.fetch_floor = self.fetch_floor.max(f.complete);
            }
        }

        // In-order commit.
        let ct = completion.max(self.last_commit).max(commit_floor);
        #[cfg(feature = "obs")]
        if let Some(tr) = &self.tracer {
            let cat = if r.inst.is_vector() {
                "vector"
            } else {
                match (&r.inst, &r.mem) {
                    (_, MemEffect::Scalar { store: false, .. }) => "load",
                    (_, MemEffect::Scalar { store: true, .. }) => "store",
                    (Inst::Branch { .. } | Inst::Jump { .. }, _) => "branch",
                    _ => "alu",
                }
            };
            // Dispatch slots are monotone, so the track stays ordered
            // even though commits of neighbouring instructions overlap.
            tr.span("o3", cat, cat, d.0, (ct - d).0);
            if let Some(resolve) = _redirect_at {
                tr.instant("o3", "redirect", "mispredict", resolve.0);
            }
            tr.count("o3.insts", 1);
        }
        self.last_commit = ct;
        self.commit_ring.push_back(ct);
        self.end = self.end.max(ct);

        // Stores access memory at commit, off the critical path.
        if let MemEffect::Scalar {
            addr, store: true, ..
        } = r.mem
        {
            self.mem.access(Level::L1D, addr, true, ct);
        }

        if let Some(w) = r.write {
            self.reg_ready[Self::reg_slot(w)] = completion.max(commit_floor);
        }
        Ok(())
    }

    /// Finishes simulation: drains the vector unit and returns total
    /// cycles.
    pub fn finish(&mut self) -> Cycle {
        let vu_done = self.vu.drain(&mut self.mem);
        self.end = self.end.max(vu_done);
        self.end
    }

    /// Core + hierarchy + vector-unit statistics.
    #[must_use]
    pub fn stats(&self) -> Stats {
        let mut s = self.stats.clone();
        s.merge(&self.mem.collect_stats());
        s.merge(&self.vu.stats());
        s
    }

    /// The memory hierarchy (inspection / reconfiguration).
    #[must_use]
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.mem
    }

    /// Mutable hierarchy access (EVE spawn/despawn).
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::{xreg, Asm, Interpreter, Memory};

    fn run_o3(asm: Asm) -> (Cycle, Stats) {
        let mut i = Interpreter::new(asm.assemble().unwrap(), Memory::new(1 << 20), 1);
        let mut core = O3Core::scalar();
        while let Some(r) = i.step().unwrap() {
            core.retire(&r).unwrap();
        }
        (core.finish(), core.stats())
    }

    fn run_io(asm: Asm) -> Cycle {
        let mut i = Interpreter::new(asm.assemble().unwrap(), Memory::new(1 << 20), 1);
        let mut core = crate::IoCore::new();
        while let Some(r) = i.step().unwrap() {
            core.retire(&r).unwrap();
        }
        core.finish()
    }

    fn loop_program(chained: bool) -> Asm {
        // A hot loop of 8 adds per iteration: chained (serial) or
        // independent (8-wide dispatch can overlap them).
        let mut a = Asm::new();
        a.li(xreg::T0, 500);
        a.label("l");
        for k in 0..8 {
            if chained {
                a.addi(xreg::T1, xreg::T1, 1);
            } else {
                let rd = [
                    xreg::T1,
                    xreg::T2,
                    xreg::T3,
                    xreg::T4,
                    xreg::T5,
                    xreg::T6,
                    xreg::S0,
                    xreg::S1,
                ][k];
                a.addi(rd, rd, 1);
            }
        }
        a.addi(xreg::T0, xreg::T0, -1);
        a.bnez(xreg::T0, "l");
        a.halt();
        a
    }

    #[test]
    fn wide_dispatch_on_independent_work() {
        let (c_par, _) = run_o3(loop_program(false));
        let (c_chain, _) = run_o3(loop_program(true));
        assert!(
            c_par.0 * 2 < c_chain.0,
            "independent {c_par} vs chain {c_chain}"
        );
    }

    #[test]
    fn o3_beats_io_on_pointer_chasing_free_loads() {
        // 64 independent loads to distinct lines: O3 overlaps the
        // misses, IO serializes them.
        let mut a = Asm::new();
        a.li(xreg::A0, 0x100);
        for k in 0..64 {
            a.lw(xreg::T0, xreg::A0, k * 64);
        }
        a.halt();
        let (o3, _) = run_o3({
            let mut b = Asm::new();
            b.li(xreg::A0, 0x100);
            for k in 0..64 {
                b.lw(xreg::T0, xreg::A0, k * 64);
            }
            b.halt();
            b
        });
        let io = run_io(a);
        assert!(io.0 > o3.0 * 3, "io {io} vs o3 {o3}");
    }

    #[test]
    fn mispredicts_cost_redirects() {
        // A data-dependent unpredictable-ish branch pattern (alternating)
        // still trains a 2-bit counter poorly vs an always-taken loop.
        let mut alternating = Asm::new();
        alternating.li(xreg::T0, 400);
        alternating.label("top");
        alternating.andi(xreg::T1, xreg::T0, 1);
        alternating.beqz(xreg::T1, "skip");
        alternating.addi(xreg::T2, xreg::T2, 1);
        alternating.label("skip");
        alternating.addi(xreg::T0, xreg::T0, -1);
        alternating.bnez(xreg::T0, "top");
        alternating.halt();
        let (_, stats) = run_o3(alternating);
        assert!(
            stats.get("mispredicts") > 100,
            "{}",
            stats.get("mispredicts")
        );
    }

    #[test]
    fn rob_bounds_runahead() {
        // One very long dependence chain mixed with a giant independent
        // stream: the window limits how far ahead the core runs, so
        // cycles exceed insts/width substantially when a load blocks.
        let mut a = Asm::new();
        a.li(xreg::A0, 0x100);
        a.lw(xreg::T0, xreg::A0, 0); // cold miss ~80 cycles
        for _ in 0..3000 {
            a.addi(xreg::T5, xreg::T5, 1);
        }
        a.halt();
        let (_, stats) = run_o3(a);
        // The chain of 3000 adds executes fine; ROB stalls appear only
        // if the window wraps — with one 80-cycle load and window 192,
        // some stall is expected but bounded.
        assert!(stats.get("insts") == 3003);
    }

    #[test]
    fn setvl_is_handled_by_the_core_not_the_unit() {
        // NoVector panics on vector issue; SetVl must not reach it.
        let mut a = Asm::new();
        a.li(xreg::A0, 16);
        a.setvl(xreg::T0, xreg::A0);
        a.halt();
        let (_, stats) = run_o3(a);
        assert_eq!(stats.get("insts"), 3);
    }
}
