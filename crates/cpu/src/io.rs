//! The single-issue in-order core (Table III "IO").
//!
//! One instruction per cycle, blocking on loads, with a small
//! store buffer and static not-taken branch prediction — a deliberate
//! low-end baseline, like the paper's own in-order core model.

use crate::vector_if::EngineError;
use crate::CODE_BASE;
use eve_common::{Cycle, Stats};
use eve_isa::{Inst, MemEffect, Retired, ScalarOp};
use eve_mem::{Hierarchy, HierarchyConfig, Level};
use eve_obs::Tracer;
use std::collections::VecDeque;

/// Store-buffer depth: retired stores drain in the background; a full
/// buffer stalls the core.
const STORE_BUFFER: usize = 8;
/// Taken-branch redirect penalty.
const BRANCH_PENALTY: u64 = 2;
/// Iterative multiply latency.
const MUL_LATENCY: u64 = 3;
/// Iterative divide latency.
const DIV_LATENCY: u64 = 20;

/// The in-order scalar core.
#[derive(Debug)]
pub struct IoCore {
    mem: Hierarchy,
    now: Cycle,
    store_buf: VecDeque<Cycle>,
    fetch_line: u64,
    stats: Stats,
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    tracer: Option<Tracer>,
}

impl Default for IoCore {
    fn default() -> Self {
        Self::new()
    }
}

impl IoCore {
    /// An IO core with the Table III memory hierarchy.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(HierarchyConfig::table_iii())
    }

    /// An IO core with a custom memory hierarchy (ablations).
    #[must_use]
    pub fn with_config(cfg: HierarchyConfig) -> Self {
        Self::with_hierarchy(Hierarchy::new(cfg))
    }

    /// An IO core over a prebuilt hierarchy (CMP construction).
    #[must_use]
    pub fn with_hierarchy(mem: Hierarchy) -> Self {
        Self {
            mem,
            now: Cycle::ZERO,
            store_buf: VecDeque::new(),
            fetch_line: u64::MAX,
            stats: Stats::new(),
            tracer: None,
        }
    }

    /// Attaches a tracer to the core and its hierarchy. Stalls then
    /// emit instants on the `io` track (when built with `obs`).
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.mem.set_tracer(tracer);
        self.tracer = Some(tracer.clone());
    }

    /// Accounts one committed instruction.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoVectorUnit`] if fed a vector
    /// instruction — IO runs scalar binaries.
    pub fn retire(&mut self, r: &Retired) -> Result<(), EngineError> {
        if r.inst.is_vector() {
            return Err(EngineError::NoVectorUnit {
                inst: format!("{:?}", r.inst),
                pc: u64::from(r.pc),
            });
        }
        self.stats.incr("insts");
        // Fetch: charge the I-cache when crossing into a new line.
        let fetch_addr = CODE_BASE + u64::from(r.pc) * 4;
        let line = fetch_addr / eve_mem::LINE_BYTES;
        if line != self.fetch_line {
            self.fetch_line = line;
            let f = self.mem.access(Level::L1I, fetch_addr, false, self.now);
            if f.hit_level != Level::L1I {
                #[cfg(feature = "obs")]
                if let Some(tr) = &self.tracer {
                    let stall = f.complete.saturating_since(self.now).0;
                    tr.span("io", "icache_stall", "icache", self.now.0, stall);
                }
                self.now = f.complete;
                self.stats.incr("icache_stalls");
            }
        }
        // Issue.
        self.now += Cycle(1);
        match (&r.inst, &r.mem) {
            (
                _,
                MemEffect::Scalar {
                    addr, store: false, ..
                },
            ) => {
                let a = self.mem.access(Level::L1D, *addr, false, self.now);
                let stall = a.complete.saturating_since(self.now);
                #[cfg(feature = "obs")]
                if let Some(tr) = &self.tracer {
                    tr.span("io", "load_stall", "load", self.now.0, stall.0);
                    tr.record("io.load_stall", stall.0);
                }
                self.stats.add("load_stall_cycles", stall.0);
                self.now = a.complete;
                self.stats.incr("loads");
            }
            (
                _,
                MemEffect::Scalar {
                    addr, store: true, ..
                },
            ) => {
                // Drain the store buffer of completed entries.
                while let Some(&front) = self.store_buf.front() {
                    if front <= self.now {
                        self.store_buf.pop_front();
                    } else {
                        break;
                    }
                }
                if self.store_buf.len() >= STORE_BUFFER {
                    let free_at = *self.store_buf.front().expect("nonempty");
                    let stall = free_at.saturating_since(self.now);
                    #[cfg(feature = "obs")]
                    if let Some(tr) = &self.tracer {
                        tr.span(
                            "io",
                            "store_stall",
                            "store_buffer_full",
                            self.now.0,
                            stall.0,
                        );
                        tr.record("io.store_stall", stall.0);
                    }
                    self.stats.add("store_stall_cycles", stall.0);
                    self.now = self.now.max(free_at);
                    self.store_buf.pop_front();
                }
                let a = self.mem.access(Level::L1D, *addr, true, self.now);
                self.store_buf.push_back(a.complete);
                self.stats.incr("stores");
            }
            (Inst::Op { op, .. } | Inst::OpImm { op, .. }, _) => match op {
                ScalarOp::Mul => self.now += Cycle(MUL_LATENCY - 1),
                ScalarOp::Div | ScalarOp::Rem => self.now += Cycle(DIV_LATENCY - 1),
                _ => {}
            },
            (Inst::Branch { .. } | Inst::Jump { .. }, _) => {
                if matches!(r.branch, Some((true, _))) {
                    self.now += Cycle(BRANCH_PENALTY);
                    self.stats.incr("taken_branches");
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Finishes simulation: drains the store buffer and returns total
    /// cycles.
    pub fn finish(&mut self) -> Cycle {
        if let Some(&last) = self.store_buf.back() {
            self.now = self.now.max(last);
        }
        self.store_buf.clear();
        self.now
    }

    /// Core counters merged with the memory hierarchy's.
    #[must_use]
    pub fn stats(&self) -> Stats {
        let mut s = self.stats.clone();
        s.merge(&self.mem.collect_stats());
        s
    }

    /// The core's memory hierarchy (for inspection in tests).
    #[must_use]
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::{xreg, Asm, Interpreter, Memory};

    fn run_io(asm: Asm) -> (Cycle, Stats) {
        let mut i = Interpreter::new(asm.assemble().unwrap(), Memory::new(1 << 16), 1);
        let mut core = IoCore::new();
        while let Some(r) = i.step().unwrap() {
            core.retire(&r).unwrap();
        }
        (core.finish(), core.stats())
    }

    #[test]
    fn ipc_approaches_one_on_hot_alu_loop() {
        // A hot loop: the I-cache warms after the first iteration, so
        // cycles/inst approaches 1 + branch bubbles.
        let mut a = Asm::new();
        a.li(xreg::T0, 500);
        a.label("l");
        a.addi(xreg::T1, xreg::T1, 1);
        a.addi(xreg::T2, xreg::T2, 1);
        a.addi(xreg::T0, xreg::T0, -1);
        a.bnez(xreg::T0, "l");
        a.halt();
        let (cycles, stats) = run_io(a);
        let insts = stats.get("insts");
        assert!(cycles.0 >= insts, "at least 1 cycle per inst");
        // 4 insts + 2 branch-bubble cycles per iteration, plus a cold
        // fetch at the start.
        assert!(cycles.0 < insts * 2, "cycles {cycles} for {insts} insts");
    }

    #[test]
    fn loads_block_the_pipeline() {
        let mut with_loads = Asm::new();
        with_loads.li(xreg::A0, 0x100);
        for k in 0..64 {
            with_loads.lw(xreg::T0, xreg::A0, k * 64);
        }
        with_loads.halt();
        let (c_loads, stats) = run_io(with_loads);
        let mut no_loads = Asm::new();
        no_loads.li(xreg::A0, 0x100);
        for _ in 0..64 {
            no_loads.addi(xreg::T0, xreg::A0, 1);
        }
        no_loads.halt();
        let (c_alu, _) = run_io(no_loads);
        assert!(
            c_loads.0 > c_alu.0 * 10,
            "distinct-line cold loads must dominate: {c_loads} vs {c_alu}"
        );
        assert!(stats.get("load_stall_cycles") > 0);
    }

    #[test]
    fn taken_branches_cost_bubbles() {
        let mut a = Asm::new();
        a.li(xreg::T0, 100);
        a.label("l");
        a.addi(xreg::T0, xreg::T0, -1);
        a.bnez(xreg::T0, "l");
        a.halt();
        let (cycles, stats) = run_io(a);
        assert_eq!(stats.get("taken_branches"), 99);
        // 2 + 200 loop insts + 99 * 2 bubbles + fetch.
        assert!(cycles.0 >= 400);
    }

    #[test]
    fn rejects_vector_instructions() {
        let mut a = Asm::new();
        a.setvl(xreg::T0, xreg::A0);
        a.halt();
        let mut i = Interpreter::new(a.assemble().unwrap(), Memory::new(64), 4);
        let mut core = IoCore::new();
        let mut err = None;
        while let Some(r) = i.step().unwrap() {
            if let Err(e) = core.retire(&r) {
                err = Some(e);
                break;
            }
        }
        assert!(matches!(err, Some(EngineError::NoVectorUnit { .. })));
    }
}
