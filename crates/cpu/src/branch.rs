//! A 2-bit saturating-counter branch predictor.

/// Classic bimodal predictor: a table of 2-bit saturating counters
/// indexed by PC.
///
/// # Examples
///
/// ```
/// use eve_cpu::BranchPredictor;
/// let mut bp = BranchPredictor::new(1024);
/// // An always-taken loop branch trains quickly.
/// let mut mispredicts = 0;
/// for _ in 0..100 {
///     if bp.predict(0x40) != true {
///         mispredicts += 1;
///     }
///     bp.update(0x40, true);
/// }
/// assert!(mispredicts <= 2);
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    table: Vec<u8>,
}

impl BranchPredictor {
    /// A predictor with `entries` counters (rounded up to a power of
    /// two), initialized weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "predictor needs at least one entry");
        Self {
            table: vec![1; entries.next_power_of_two()],
        }
    }

    fn index(&self, pc: u32) -> usize {
        pc as usize & (self.table.len() - 1)
    }

    /// Predicts the direction of the branch at `pc`.
    #[must_use]
    pub fn predict(&self, pc: u32) -> bool {
        self.table[self.index(pc)] >= 2
    }

    /// Trains the counter with the resolved direction.
    pub fn update(&mut self, pc: u32, taken: bool) {
        let i = self.index(pc);
        let e = &mut self.table[i];
        if taken {
            *e = (*e + 1).min(3);
        } else {
            *e = e.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_prediction_not_taken() {
        let bp = BranchPredictor::new(16);
        assert!(!bp.predict(0));
    }

    #[test]
    fn saturates_both_directions() {
        let mut bp = BranchPredictor::new(16);
        for _ in 0..10 {
            bp.update(5, true);
        }
        assert!(bp.predict(5));
        // One not-taken does not flip a saturated counter.
        bp.update(5, false);
        assert!(bp.predict(5));
        bp.update(5, false);
        assert!(!bp.predict(5));
    }

    #[test]
    fn entries_alias_by_power_of_two() {
        let mut bp = BranchPredictor::new(3); // rounds to 4
        bp.update(0, true);
        bp.update(0, true);
        assert!(bp.predict(4)); // aliases with 0
        assert!(!bp.predict(1));
    }
}
