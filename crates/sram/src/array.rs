//! The bit-accurate EVE SRAM array and μprogram executor.
//!
//! [`EveArray`] models one array's storage *and* the peripheral circuit
//! stacks of §III at bit granularity. The lane dimension is *bitsliced*:
//! bit `b` of every lane's segment lives in one packed bit-plane of
//! `lanes/64` words, so a μop that touches all lanes becomes a handful
//! of word-wide boolean ops instead of a per-lane loop. The Manchester
//! carry chain turns into the word-parallel carry recurrence
//! `carry' = (a & b) | (carry & (a ^ b))` evaluated once per bit
//! position. See DESIGN.md, "Lane-bitsliced data layout".
//!
//! The executor runs complete μprograms: counter and control μops like
//! the VSU, arithmetic μops like the circuits. Timing semantics match
//! `eve_uop::latency`: one tuple per cycle, every μop in a tuple reads
//! start-of-cycle state, and only the fused control μop observes its
//! counter update.
//!
//! When a `FaultInjector` is attached, the affected data paths fall
//! back to lane-serial loops so injector callbacks fire per lane in
//! exactly the order the scalar reference executor ([`crate::scalar`])
//! uses — the injector's RNG stream, and therefore every campaign
//! artifact, stays bit-identical.

use crate::ecc::{SecdedCode, SecdedVerdict};
use crate::fault::FaultInjector;
use crate::geometry::DEFAULT_SPARE_ROWS;
use eve_common::bits::{deposit_bits, extract_bits};
use eve_common::Cycle;
use eve_uop::fuse::{self, CompiledOp, CompiledProgram, LatchKeep, ProgramCache};
use eve_uop::{
    ArithUop, CarryIn, ComputeSrc, ControlUop, CounterFile, CounterUop, HybridConfig, MacroOpKind,
    MaskSrc, MicroProgram, Operand, ProgramLibrary, SegSel, VSlot, WbDest,
};
use std::sync::Arc;

/// Number of architectural vector registers (RVV: `v0`–`v31`).
pub const ARCH_VREGS: u32 = 32;
/// Scratch registers reserved for μprograms (see `eve_uop::library`).
pub const SCRATCH_VREGS: u32 = 6;

/// Lanes per packed storage word.
const WORD_BITS: usize = 64;

/// How an attached injector's detection machinery checks rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionMode {
    /// Per-row interleaved parity (PR 1): detects writeback-layer
    /// corruption, corrects nothing.
    Parity,
    /// Hamming-plus-parity SECDED per lane segment: single-bit faults
    /// corrected in place on the read port, double-bit faults flagged
    /// uncorrectable. The check runs word-parallel on syndrome planes.
    Secded,
}

/// What one background scrub pass over the array found and fixed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[must_use]
pub struct ScrubStats {
    /// Logical rows scanned.
    pub rows: u64,
    /// Single-bit errors corrected in place (SECDED only).
    pub corrected: u64,
    /// Errors detected but not correctable (parity mismatches, or
    /// SECDED double-bit syndromes).
    pub uncorrectable: u64,
}

/// Binds the abstract μprogram slots to physical vector registers.
///
/// # Examples
///
/// ```
/// use eve_sram::Binding;
/// let b = Binding::new(3, 1, 2); // d = v3, s1 = v1, s2 = v2
/// assert_eq!(b.d(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Binding {
    d: u8,
    s1: u8,
    s2: u8,
}

impl Binding {
    /// Binds destination and sources. The RVV mask register is always
    /// `v0`.
    ///
    /// # Panics
    ///
    /// Panics if any register index is 32 or above.
    #[must_use]
    pub fn new(d: u8, s1: u8, s2: u8) -> Self {
        assert!(
            u32::from(d) < ARCH_VREGS && u32::from(s1) < ARCH_VREGS && u32::from(s2) < ARCH_VREGS,
            "register index out of range"
        );
        Self { d, s1, s2 }
    }

    /// Destination register index.
    #[must_use]
    pub fn d(&self) -> u8 {
        self.d
    }

    /// First source register index.
    #[must_use]
    pub fn s1(&self) -> u8 {
        self.s1
    }

    /// Second source register index.
    #[must_use]
    pub fn s2(&self) -> u8 {
        self.s2
    }
}

/// Fault-injection state: the attached injector plus the detection
/// machinery (per-row parity or SECDED check planes) and the
/// spare-row remap table the recovery ladder drives.
#[derive(Debug, Clone)]
struct FaultState {
    inj: FaultInjector,
    mode: DetectionMode,
    /// `parity[phys_row][lane]`: odd parity of the cell's intended
    /// value, generated at write time *before* the writeback layer can
    /// corrupt the latch. Parity mode only.
    parity: Vec<Vec<bool>>,
    /// SECDED check-bit planes, `phys_rows * check_bits * words`
    /// packed words, generated from intended values at write time.
    /// Layout mirrors `storage`: plane `j` of physical row `r` starts
    /// at `(r * check_bits + j) * words`. Secded mode only.
    check: Vec<u64>,
    /// The per-segment SECDED code (Secded mode).
    code: SecdedCode,
    /// Syndrome scratch planes (`check_bits * words`), reused per
    /// checked row — no per-check allocation.
    scr_s: Vec<u64>,
    /// Remap table: logical row → physical row. Identity until the
    /// recovery controller retires rows to spares.
    remap: Vec<usize>,
    /// Spare rows handed out so far.
    spares_used: usize,
    /// Rows retired to spares over the array's lifetime.
    remapped: u64,
    /// Per-logical-row count of detection/correction events since the
    /// last remap of that row — the "this row keeps faulting" signal
    /// the remap stage keys off.
    row_events: Vec<u64>,
    /// Uncorrectable detections (parity mismatches, SECDED double-bit
    /// syndromes) observed on μprogram reads.
    alarms: u64,
    /// SECDED single-bit errors corrected in place.
    corrected: u64,
}

#[inline]
fn odd_parity(v: u32) -> bool {
    v.count_ones() & 1 == 1
}

/// Gathers one lane's segment value out of a bit-plane group
/// (`bits` planes of `words` words each).
#[inline]
fn lane_get(planes: &[u64], words: usize, bits: usize, lane: usize) -> u32 {
    let (w, s) = (lane / WORD_BITS, lane % WORD_BITS);
    let mut v = 0u32;
    for b in 0..bits {
        v |= (((planes[b * words + w] >> s) & 1) as u32) << b;
    }
    v
}

/// Scatters one lane's segment value into a bit-plane group.
#[inline]
fn lane_set(planes: &mut [u64], words: usize, bits: usize, lane: usize, value: u32) {
    let (w, s) = (lane / WORD_BITS, lane % WORD_BITS);
    let m = 1u64 << s;
    for b in 0..bits {
        let i = b * words + w;
        if (value >> b) & 1 == 1 {
            planes[i] |= m;
        } else {
            planes[i] &= !m;
        }
    }
}

/// One lane's bit of a single-plane latch (mask, carry, spare).
#[inline]
fn word_bit(plane: &[u64], lane: usize) -> bool {
    (plane[lane / WORD_BITS] >> (lane % WORD_BITS)) & 1 == 1
}

/// Mask-gated blend: lanes set in `m` take `src`, the rest keep `dst`.
#[inline]
fn blend(dst: u64, src: u64, m: u64) -> u64 {
    dst ^ ((dst ^ src) & m)
}

/// One source row out of the two halves `split_at_mut` left around the
/// destination row `d` (rows are `pl` words each).
#[inline]
fn side_row<'s>(left: &'s [u64], right: &'s [u64], pl: usize, d: usize, r: usize) -> &'s [u64] {
    if r < d {
        &left[r * pl..(r + 1) * pl]
    } else {
        &right[(r - d - 1) * pl..(r - d) * pl]
    }
}

/// Disjoint borrows of two source rows and the destination row from
/// the packed storage. Requires `d != a` and `d != b` (`a == b` is
/// fine — both land on the same shared slice).
#[inline]
fn rows_abd(
    storage: &mut [u64],
    pl: usize,
    a: usize,
    b: usize,
    d: usize,
) -> (&[u64], &[u64], &mut [u64]) {
    debug_assert!(d != a && d != b, "destination row aliases a source");
    let (left, rest) = storage.split_at_mut(d * pl);
    let (drow, right) = rest.split_at_mut(pl);
    let (left, right) = (&*left, &*right);
    (
        side_row(left, right, pl, d, a),
        side_row(left, right, pl, d, b),
        drow,
    )
}

/// Disjoint borrows of one source row and the destination row.
/// Requires `s != d`.
#[inline]
fn rows_sd(storage: &mut [u64], pl: usize, s: usize, d: usize) -> (&[u64], &mut [u64]) {
    debug_assert!(s != d, "destination row aliases the source");
    let (left, rest) = storage.split_at_mut(d * pl);
    let (drow, right) = rest.split_at_mut(pl);
    (side_row(&*left, &*right, pl, d, s), drow)
}

/// The writeback-plane selector of a fused op, as lane masks: exactly
/// one of `and`/`or`/`xor`/`sum` is all-ones, and `neg` is all-ones
/// for the complemented sources (applied against the live-lane mask).
#[derive(Clone, Copy)]
struct PlaneSel {
    and: u64,
    or: u64,
    xor: u64,
    sum: u64,
    neg: u64,
}

impl PlaneSel {
    #[inline]
    fn of(src: ComputeSrc) -> Self {
        let (and, or, xor, sum, neg) = match src {
            ComputeSrc::And => (!0u64, 0, 0, 0, 0),
            ComputeSrc::Nand => (!0, 0, 0, 0, !0),
            ComputeSrc::Or => (0, !0, 0, 0, 0),
            ComputeSrc::Nor => (0, !0, 0, 0, !0),
            ComputeSrc::Xor => (0, 0, !0, 0, 0),
            ComputeSrc::Xnor => (0, 0, !0, 0, !0),
            ComputeSrc::Add => (0, 0, 0, !0, 0),
            ComputeSrc::Shift | ComputeSrc::Mask => {
                unreachable!("fuser only fuses latch-plane writebacks")
            }
        };
        Self {
            and,
            or,
            xor,
            sum,
            neg,
        }
    }
}

/// One packed word of a fused compute+writeback: advances the carry
/// recurrence and blends the selected plane into `d` under the store
/// mask `sm` (`f` is the live-lane mask for complements). Branchless
/// so the word loops vectorize.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn fused_word(av: u64, bv: u64, c: &mut u64, f: u64, sm: u64, d: &mut u64, sel: PlaneSel) {
    let and = av & bv;
    let or = av | bv;
    let xor = av ^ bv;
    let cin = *c;
    let sum = xor ^ cin;
    *c = and | (cin & xor);
    let v = ((and & sel.and) | (or & sel.or) | (xor & sel.xor) | (sum & sel.sum)) ^ (sel.neg & f);
    *d = blend(*d, v, sm);
}

/// Latched outputs of the last bit-line compute, as lane bit-planes.
///
/// Only the positive-polarity layers are stored; `nand`/`nor`/`xnor`
/// are exact complements over the live lanes and are derived at read
/// time. `valid` is false until the first `blc`, when every source
/// (including the complements) must still read as zero — matching the
/// scalar latch's empty state.
#[derive(Debug, Clone, Default)]
struct BlcLatch {
    and: Vec<u64>,
    or: Vec<u64>,
    xor: Vec<u64>,
    sum: Vec<u64>,
    valid: bool,
}

/// One bit-accurate EVE SRAM array, lane-bitsliced.
///
/// Rows are addressed logically: register `v` occupies rows
/// `v * segments .. (v+1) * segments`, architectural registers first,
/// then the μprogram scratch registers. (Physically registers beyond a
/// column group's capacity spill into repurposed column stacks — see
/// DESIGN.md; the logical view is bit- and cycle-equivalent.)
///
/// Storage layout: row `r`, bit `b`, word `w` lives at
/// `storage[(r * bits + b) * words + w]`; bit `l % 64` of that word is
/// lane `w * 64 + l`'s bit `b`. Bits at positions `>= lanes` in the
/// last word of every plane are kept zero (the tail invariant), so
/// complements are computed as `x ^ full[w]` against the live-lane
/// mask rather than `!x`.
#[derive(Debug, Clone)]
pub struct EveArray {
    cfg: HybridConfig,
    lanes: usize,
    rows: usize,
    /// Spare rows fabricated past `rows`, reachable only through the
    /// remap table (mirrors `SramGeometry`'s repair budget).
    spare_rows: usize,
    /// Bits per segment (planes per row).
    bits: usize,
    /// Packed words per bit-plane: `lanes.div_ceil(64)`.
    words: usize,
    seg_mask: u32,
    /// Live-lane mask per word (all ones except the tail of the last
    /// word).
    full: Vec<u64>,
    /// Row bit-planes: `rows * bits * words` packed words.
    storage: Vec<u64>,
    /// XRegister bit-planes (`bits * words`).
    xreg: Vec<u64>,
    /// Constant shifter bit-planes (`bits * words`).
    shifter: Vec<u64>,
    /// Add-logic carry, one bit per lane (§III-C spare-shifter FF).
    carry: Vec<u64>,
    /// Mask latches, one bit per lane.
    mask: Vec<u64>,
    /// Spare shifter's cross-segment bit per lane.
    spare: Vec<u64>,
    /// Latched outputs of the last `blc`.
    blc: BlcLatch,
    /// Data driven out by the last `Read` μop.
    data_out: Vec<u32>,
    /// Data presented on the data-in port for `WriteDataIn`.
    data_in: Vec<u32>,
    /// Fault injection and parity tracking; `None` in healthy runs so
    /// the hot path pays nothing.
    fault: Option<FaultState>,
    /// Scratch planes for fault-path sensed operands (reused across
    /// cycles — no per-cycle allocation).
    scr_a: Vec<u64>,
    scr_b: Vec<u64>,
    /// Scratch word-plane for shifter rotations.
    scr_c: Vec<u64>,
}

impl EveArray {
    /// Creates an array for configuration `cfg` with `lanes` column
    /// groups, zero-initialized.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    #[must_use]
    pub fn new(cfg: HybridConfig, lanes: usize) -> Self {
        assert!(lanes > 0, "an array needs at least one lane");
        let segs = cfg.segments() as usize;
        let rows = (ARCH_VREGS + SCRATCH_VREGS) as usize * segs;
        let bits = cfg.segment_bits() as usize;
        let seg_mask = if bits == 32 {
            u32::MAX
        } else {
            (1 << bits) - 1
        };
        let words = lanes.div_ceil(WORD_BITS);
        let mut full = vec![u64::MAX; words];
        let tail = lanes % WORD_BITS;
        if tail != 0 {
            full[words - 1] = (1u64 << tail) - 1;
        }
        let plane = bits * words;
        let spare_rows = DEFAULT_SPARE_ROWS as usize;
        Self {
            cfg,
            lanes,
            rows,
            spare_rows,
            bits,
            words,
            seg_mask,
            full,
            storage: vec![0; (rows + spare_rows) * plane],
            xreg: vec![0; plane],
            shifter: vec![0; plane],
            carry: vec![0; words],
            mask: vec![0; words],
            spare: vec![0; words],
            blc: BlcLatch {
                and: vec![0; plane],
                or: vec![0; plane],
                xor: vec![0; plane],
                sum: vec![0; plane],
                valid: false,
            },
            data_out: vec![0; lanes],
            data_in: vec![0; lanes],
            fault: None,
            scr_a: vec![0; plane],
            scr_b: vec![0; plane],
            scr_c: vec![0; words],
        }
    }

    /// Packed words per bit-plane group of one row.
    #[inline]
    fn plane_len(&self) -> usize {
        self.bits * self.words
    }

    /// Index range of `row`'s bit-planes in `storage`.
    #[inline]
    fn row_range(&self, row: usize) -> std::ops::Range<usize> {
        let pl = self.plane_len();
        row * pl..(row + 1) * pl
    }

    /// Attaches a fault injector with parity detection (PR 1
    /// behavior): the current contents get fresh parity, and every
    /// later write regenerates its row's parity from the intended
    /// value.
    pub fn attach_injector(&mut self, inj: FaultInjector) {
        self.attach_injector_with(inj, DetectionMode::Parity);
    }

    /// Attaches a fault injector with an explicit detection mode.
    ///
    /// In [`DetectionMode::Secded`], every row grows per-lane SECDED
    /// check bits generated from intended values; μprogram reads run a
    /// word-parallel syndrome check that corrects single-bit faults in
    /// place and flags double-bit faults uncorrectable.
    ///
    /// The injector is armed over the *addressable* rows only: spare
    /// rows model the fuse-tested-good redundancy real macros ship, so
    /// the stuck-cell population (and hence the RNG stream) is
    /// identical to the scalar reference executor's.
    pub fn attach_injector_with(&mut self, mut inj: FaultInjector, mode: DetectionMode) {
        inj.arm(self.rows as u32, self.lanes as u32, self.cfg.segment_bits());
        let (bits, words) = (self.bits, self.words);
        let pl = self.plane_len();
        let phys_rows = self.rows + self.spare_rows;
        let code = SecdedCode::new(self.bits as u32);
        let cb = code.check_bits() as usize;
        let mut parity = Vec::new();
        let mut check = Vec::new();
        match mode {
            DetectionMode::Parity => {
                parity = (0..phys_rows)
                    .map(|row| {
                        let planes = &self.storage[row * pl..(row + 1) * pl];
                        (0..self.lanes)
                            .map(|lane| odd_parity(lane_get(planes, words, bits, lane)))
                            .collect()
                    })
                    .collect();
            }
            DetectionMode::Secded => {
                check = vec![0u64; phys_rows * cb * words];
                for row in 0..phys_rows {
                    let planes = &self.storage[row * pl..(row + 1) * pl];
                    let chk = &mut check[row * cb * words..(row + 1) * cb * words];
                    for lane in 0..self.lanes {
                        let c = code.encode(lane_get(planes, words, bits, lane));
                        lane_set(chk, words, cb, lane, c);
                    }
                }
            }
        }
        self.fault = Some(FaultState {
            inj,
            mode,
            parity,
            check,
            code,
            scr_s: vec![0u64; cb * words],
            remap: (0..self.rows).collect(),
            spares_used: 0,
            remapped: 0,
            row_events: vec![0; self.rows],
            alarms: 0,
            corrected: 0,
        });
    }

    /// Detaches and returns the injector, switching detection off.
    pub fn detach_injector(&mut self) -> Option<FaultInjector> {
        self.fault.take().map(|f| f.inj)
    }

    /// The attached injector, if any.
    #[must_use]
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.fault.as_ref().map(|f| &f.inj)
    }

    /// The active detection mode, if an injector is attached.
    #[must_use]
    pub fn detection_mode(&self) -> Option<DetectionMode> {
        self.fault.as_ref().map(|f| f.mode)
    }

    /// Uncorrectable detections (parity mismatches or SECDED
    /// double-bit syndromes) observed on μprogram reads so far.
    #[must_use]
    pub fn parity_alarms(&self) -> u64 {
        self.fault.as_ref().map_or(0, |f| f.alarms)
    }

    /// Returns and clears the uncorrectable-alarm counter (the
    /// recovery controller's acknowledge).
    pub fn take_parity_alarms(&mut self) -> u64 {
        match &mut self.fault {
            Some(f) => std::mem::take(&mut f.alarms),
            None => 0,
        }
    }

    /// SECDED single-bit errors corrected in place so far.
    #[must_use]
    pub fn corrected_events(&self) -> u64 {
        self.fault.as_ref().map_or(0, |f| f.corrected)
    }

    /// Returns and clears the corrected-error counter.
    pub fn take_corrected_events(&mut self) -> u64 {
        match &mut self.fault {
            Some(f) => std::mem::take(&mut f.corrected),
            None => 0,
        }
    }

    /// Rows retired to spares over the array's lifetime.
    #[must_use]
    pub fn remapped_rows(&self) -> u64 {
        self.fault.as_ref().map_or(0, |f| f.remapped)
    }

    /// Spare rows still available for remapping.
    #[must_use]
    pub fn spares_free(&self) -> usize {
        self.fault
            .as_ref()
            .map_or(self.spare_rows, |f| self.spare_rows - f.spares_used)
    }

    /// Logical rows whose detection/correction event count since their
    /// last remap is at least `threshold` — the candidates the remap
    /// stage retires (repeated events mean a permanent fault, not a
    /// transient).
    #[must_use]
    pub fn hot_rows(&self, threshold: u64) -> Vec<u32> {
        let Some(f) = &self.fault else {
            return Vec::new();
        };
        f.row_events
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n >= threshold)
            .map(|(row, _)| row as u32)
            .collect()
    }

    /// Physical row backing a logical row (identity until remapped).
    #[inline]
    fn phys_row(&self, row: usize) -> usize {
        match &self.fault {
            Some(f) => f.remap[row],
            None => row,
        }
    }

    /// Writes one segment cell, generating parity/ECC from the
    /// intended value and then letting the injector corrupt the latch.
    #[inline]
    fn store_cell(&mut self, row: usize, lane: usize, value: u32) {
        let (bits, words) = (self.bits, self.words);
        let (phys, value) = match &mut self.fault {
            None => (row, value),
            Some(f) => {
                let phys = f.remap[row];
                match f.mode {
                    DetectionMode::Parity => f.parity[phys][lane] = odd_parity(value),
                    DetectionMode::Secded => {
                        let cb = f.code.check_bits() as usize;
                        let chk = &mut f.check[phys * cb * words..(phys + 1) * cb * words];
                        lane_set(chk, words, cb, lane, f.code.encode(value));
                    }
                }
                (phys, f.inj.corrupt_write(phys as u32, lane as u32, value))
            }
        };
        let range = self.row_range(phys);
        lane_set(&mut self.storage[range], words, bits, lane, value);
    }

    /// Checks a row on a μprogram read: per-lane parity compare in
    /// parity mode, word-parallel SECDED syndrome audit (with in-place
    /// correction) in SECDED mode.
    #[inline]
    fn check_row(&mut self, row: usize) {
        match self.fault.as_ref().map(|f| f.mode) {
            None => {}
            Some(DetectionMode::Parity) => self.check_row_parity(row),
            Some(DetectionMode::Secded) => {
                let _ = self.secded_audit_row(row);
            }
        }
    }

    /// Parity-checks every lane of a row on a μprogram read (the row is
    /// read as one wide word, parity bits interleaved lane by lane),
    /// raising an alarm per mismatch.
    #[inline]
    fn check_row_parity(&mut self, row: usize) {
        let (bits, words) = (self.bits, self.words);
        let lanes = self.lanes;
        let pl = self.plane_len();
        if let Some(f) = &mut self.fault {
            let phys = f.remap[row];
            let planes = &self.storage[phys * pl..(phys + 1) * pl];
            let mut hits = 0u64;
            for (lane, &p) in f.parity[phys][..lanes].iter().enumerate() {
                if p != odd_parity(lane_get(planes, words, bits, lane)) {
                    hits += 1;
                }
            }
            f.alarms += hits;
            f.row_events[row] += hits;
        }
    }

    /// Word-parallel SECDED audit of one logical row, correcting
    /// single-bit errors in place and flagging double-bit errors.
    ///
    /// The fast path never leaves word algebra: each syndrome plane is
    /// the stored check plane XORed with the data planes of its parity
    /// group ([`SecdedCode::group_mask`]), and the overall-parity
    /// plane folds in every data and check plane. Only lanes inside a
    /// nonzero syndrome word — in a healthy array, none — fall back to
    /// per-lane decode and repair.
    ///
    /// The repair models the ECC pipeline on the read port: the
    /// corrected value is both delivered downstream and written back,
    /// so a transient is healed for good while a stuck cell re-arms on
    /// its next write — the row's event counter keeps climbing with
    /// write traffic until the remap stage retires it, exactly the
    /// repeated-fault signal sparing needs.
    fn secded_audit_row(&mut self, row: usize) -> (u64, u64) {
        let (bits, words, lanes) = (self.bits, self.words, self.lanes);
        let pl = bits * words;
        let Some(f) = &mut self.fault else {
            return (0, 0);
        };
        let phys = f.remap[row];
        let code = f.code;
        let r = code.hamming_bits() as usize;
        let cb = code.check_bits() as usize;
        let data_base = phys * pl;
        let chk_base = phys * cb * words;
        // Syndrome planes, word-parallel.
        for j in 0..r {
            let group = code.group_mask(j as u32);
            for w in 0..words {
                let mut s = f.check[chk_base + j * words + w];
                let mut m = group;
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    s ^= self.storage[data_base + b * words + w];
                    m &= m - 1;
                }
                f.scr_s[j * words + w] = s;
            }
        }
        // Overall-parity plane: stored P vs parity of the whole
        // codeword (every data plane plus every Hamming check plane).
        for w in 0..words {
            let mut p = f.check[chk_base + r * words + w];
            for b in 0..bits {
                p ^= self.storage[data_base + b * words + w];
            }
            for j in 0..r {
                p ^= f.check[chk_base + j * words + w];
            }
            f.scr_s[r * words + w] = p;
        }
        let (mut corrected, mut uncorrectable) = (0u64, 0u64);
        for w in 0..words {
            let mut dirty = 0u64;
            for j in 0..cb {
                dirty |= f.scr_s[j * words + w];
            }
            dirty &= self.full[w];
            while dirty != 0 {
                let lane = w * WORD_BITS + dirty.trailing_zeros() as usize;
                dirty &= dirty - 1;
                if lane >= lanes {
                    continue;
                }
                let data = &self.storage[data_base..data_base + pl];
                let chk = &f.check[chk_base..chk_base + cb * words];
                let mut d = lane_get(data, words, bits, lane);
                let mut c = lane_get(chk, words, cb, lane);
                match code.correct(&mut d, &mut c) {
                    SecdedVerdict::Clean => {}
                    SecdedVerdict::CorrectedData(_) => {
                        lane_set(
                            &mut self.storage[data_base..data_base + pl],
                            words,
                            bits,
                            lane,
                            d,
                        );
                        corrected += 1;
                    }
                    SecdedVerdict::CorrectedCheck(_) => {
                        let chk_mut = &mut f.check[chk_base..chk_base + cb * words];
                        lane_set(chk_mut, words, cb, lane, c);
                        corrected += 1;
                    }
                    SecdedVerdict::Uncorrectable => uncorrectable += 1,
                }
            }
        }
        f.corrected += corrected;
        f.alarms += uncorrectable;
        f.row_events[row] += corrected + uncorrectable;
        (corrected, uncorrectable)
    }

    /// Audits every segment row of an architectural register through
    /// the active detection mode — the ECC-on-read pipeline the drain
    /// path applies before values leave the engine. SECDED corrects
    /// single-bit errors in place; parity only detects (raising
    /// alarms). Returns `(corrected, uncorrectable)` event counts; the
    /// same events also accumulate into the array's counters.
    pub fn audit_register(&mut self, vreg: u32) -> (u64, u64) {
        let Some(mode) = self.fault.as_ref().map(|f| f.mode) else {
            return (0, 0);
        };
        let segs = self.cfg.segments();
        let (mut corrected, mut uncorrectable) = (0u64, 0u64);
        for seg in 0..segs {
            let row = self.reg_row(vreg, seg);
            match mode {
                DetectionMode::Parity => {
                    let before = self.parity_alarms();
                    self.check_row_parity(row);
                    uncorrectable += self.parity_alarms() - before;
                }
                DetectionMode::Secded => {
                    let (c, u) = self.secded_audit_row(row);
                    corrected += c;
                    uncorrectable += u;
                }
            }
        }
        (corrected, uncorrectable)
    }

    /// Retires a logical row to the next free spare, copying its
    /// (ECC-corrected, where possible) contents and updating the remap
    /// table. Returns `false` when no injector is attached or the
    /// spare budget is exhausted.
    ///
    /// The copy is a controller-internal latch-to-latch transfer, not
    /// architectural write traffic: the spare row gets fresh
    /// parity/ECC generated from the copied values and the injector's
    /// RNG stream is left untouched, so seeded campaigns stay
    /// deterministic whether or not a remap fired. (Spare rows are
    /// fuse-tested-good — they carry no stuck cells by construction.)
    pub fn remap_row(&mut self, row: usize) -> bool {
        assert!(row < self.rows, "cannot remap row {row}");
        let (bits, words, lanes) = (self.bits, self.words, self.lanes);
        let pl = bits * words;
        let Some(f) = &self.fault else {
            return false;
        };
        if f.spares_used >= self.spare_rows {
            return false;
        }
        let old_phys = f.remap[row];
        let code = f.code;
        let cb = code.check_bits() as usize;
        let secded = f.mode == DetectionMode::Secded;
        let values: Vec<u32> = (0..lanes)
            .map(|lane| {
                let data = &self.storage[old_phys * pl..(old_phys + 1) * pl];
                let mut d = lane_get(data, words, bits, lane);
                if secded {
                    let chk = &f.check[old_phys * cb * words..(old_phys + 1) * cb * words];
                    let mut c = lane_get(chk, words, cb, lane);
                    let _ = code.correct(&mut d, &mut c);
                }
                d
            })
            .collect();
        let f = self.fault.as_mut().expect("fault state present");
        let new_phys = self.rows + f.spares_used;
        f.remap[row] = new_phys;
        f.spares_used += 1;
        f.remapped += 1;
        f.row_events[row] = 0;
        for (lane, v) in values.into_iter().enumerate() {
            match f.mode {
                DetectionMode::Parity => f.parity[new_phys][lane] = odd_parity(v),
                DetectionMode::Secded => {
                    let chk = &mut f.check[new_phys * cb * words..(new_phys + 1) * cb * words];
                    lane_set(chk, words, cb, lane, code.encode(v));
                }
            }
            lane_set(
                &mut self.storage[new_phys * pl..(new_phys + 1) * pl],
                words,
                bits,
                lane,
                v,
            );
        }
        true
    }

    /// One background scrub pass: audits every logical row through the
    /// active detection mode. In SECDED mode single-bit errors are
    /// corrected in place (cleaning latent damage before a second flip
    /// can pair with it); in parity mode mismatches are detected and
    /// alarmed but not repaired.
    pub fn scrub(&mut self) -> ScrubStats {
        let mut stats = ScrubStats::default();
        let Some(mode) = self.fault.as_ref().map(|f| f.mode) else {
            return stats;
        };
        for row in 0..self.rows {
            stats.rows += 1;
            match mode {
                DetectionMode::Parity => {
                    let before = self.parity_alarms();
                    self.check_row_parity(row);
                    stats.uncorrectable += self.parity_alarms() - before;
                }
                DetectionMode::Secded => {
                    let (c, u) = self.secded_audit_row(row);
                    stats.corrected += c;
                    stats.uncorrectable += u;
                }
            }
        }
        stats
    }

    /// The configuration this array was built for.
    #[must_use]
    pub fn config(&self) -> HybridConfig {
        self.cfg
    }

    /// Number of lanes (in-situ ALUs).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Writes a 32-bit element into lane `lane` of register `vreg`
    /// (the memory-fill path, normally fed by a DTU).
    ///
    /// # Panics
    ///
    /// Panics if `vreg` or `lane` is out of range.
    pub fn write_element(&mut self, vreg: u32, lane: usize, value: u32) {
        let segs = self.cfg.segments();
        let bits = self.cfg.segment_bits();
        for s in 0..segs {
            let row = self.reg_row(vreg, s);
            let seg = extract_bits(value, s * bits, bits);
            self.store_cell(row, lane, seg);
        }
    }

    /// Reads lane `lane` of register `vreg` back as a 32-bit element.
    ///
    /// # Panics
    ///
    /// Panics if `vreg` or `lane` is out of range.
    #[must_use]
    pub fn read_element(&self, vreg: u32, lane: usize) -> u32 {
        let segs = self.cfg.segments();
        let bits = self.cfg.segment_bits();
        let mut value = 0;
        for s in 0..segs {
            let row = self.phys_row(self.reg_row(vreg, s));
            let seg = lane_get(
                &self.storage[self.row_range(row)],
                self.words,
                self.bits,
                lane,
            );
            value = deposit_bits(value, s * bits, bits, seg);
        }
        value
    }

    /// Reads the mask bit register `vreg` holds for `lane` (bit 0 of the
    /// register's first row — how compare results are stored).
    #[must_use]
    pub fn read_mask_bit(&self, vreg: u32, lane: usize) -> bool {
        let row = self.phys_row(self.reg_row(vreg, 0));
        let base = row * self.plane_len();
        word_bit(&self.storage[base..base + self.words], lane)
    }

    /// Writes a mask bit into register `vreg` for `lane`.
    pub fn write_mask_bit(&mut self, vreg: u32, lane: usize, value: bool) {
        let row = self.reg_row(vreg, 0);
        self.store_cell(row, lane, u32::from(value));
    }

    /// Presents per-lane data on the data-in port (consumed by
    /// `WriteDataIn` μops).
    pub fn set_data_in(&mut self, data: Vec<u32>) {
        assert_eq!(data.len(), self.lanes, "data-in width mismatch");
        self.data_in = data;
    }

    /// The data driven out by the most recent `Read` μop.
    #[must_use]
    pub fn data_out(&self) -> &[u32] {
        &self.data_out
    }

    /// Executes a μprogram against this array with `binding`, returning
    /// the cycles it took (identical to `eve_uop::count_cycles`).
    ///
    /// # Panics
    ///
    /// Panics on malformed programs (runaway loops, out-of-range rows) —
    /// generator bugs, not user errors.
    pub fn execute(&mut self, prog: &MicroProgram, binding: &Binding) -> Cycle {
        let mut counters = CounterFile::new();
        let mut pc: usize = 0;
        let mut cycles: u64 = 0;
        let tuples = prog.tuples();
        loop {
            assert!(pc < tuples.len(), "{}: pc {pc} off the end", prog.name());
            let tuple = &tuples[pc];
            cycles += 1;
            assert!(cycles < 2_000_000, "{}: runaway program", prog.name());
            if let Some(f) = &mut self.fault {
                f.inj.tick();
            }
            // Arithmetic resolves rows against start-of-cycle counters.
            self.exec_arith(&tuple.arith, binding, &counters);
            match tuple.counter {
                CounterUop::Nop => {}
                CounterUop::Init { ctr, value } => counters.init(ctr, value),
                CounterUop::Decr(ctr) => counters.decr(ctr),
                CounterUop::Incr(ctr) => counters.incr(ctr),
            }
            match tuple.control {
                ControlUop::Nop => pc += 1,
                ControlUop::Bnz { ctr, target } => {
                    if counters.take_zero_flag(ctr) {
                        pc += 1;
                    } else {
                        pc = target as usize;
                    }
                }
                ControlUop::BnzRet { ctr, target } => {
                    if counters.take_zero_flag(ctr) {
                        return Cycle(cycles);
                    }
                    pc = target as usize;
                }
                ControlUop::Bnd { ctr, target } => {
                    if counters.take_decade_flag(ctr) {
                        pc = target as usize;
                    } else {
                        pc += 1;
                    }
                }
                ControlUop::Jump { target } => pc = target as usize,
                ControlUop::Ret => return Cycle(cycles),
            }
        }
    }

    /// Executes a macro-op through the tier ladder: an armed injector
    /// forces the interpreter (tier 1) so per-lane RNG order — and
    /// therefore every seeded campaign artifact — stays byte-identical;
    /// a healthy array dispatches to the compiled program on a cache
    /// hit (tier 2) and compiles on the first miss while interpreting
    /// that execution, so the hit/miss counters reflect real reuse.
    ///
    /// # Panics
    ///
    /// Panics on malformed programs, like [`Self::execute`].
    pub fn execute_tiered(
        &mut self,
        lib: &ProgramLibrary,
        cache: &mut ProgramCache,
        kind: MacroOpKind,
        binding: &Binding,
    ) -> Cycle {
        if self.fault.is_some() {
            // Fallback without consulting the cache: fault campaigns
            // must see the interpreter's exact store/sense call order,
            // and `store_cell` is what keeps parity/SECDED check planes
            // coherent with every write.
            let prog = lib.program(kind);
            let cycles = self.execute(&prog, binding);
            cache.stats_mut().record_tier1(cycles);
            return cycles;
        }
        if let Some(cp) = cache.lookup(kind, self.cfg, self.lanes) {
            let cycles = self.execute_compiled(&cp, binding);
            cache
                .stats_mut()
                .record_tier2(cycles, cp.uops(), cp.fused());
            return cycles;
        }
        // First sight of this key: specialize for next time, interpret
        // this execution.
        let prog = lib.program(kind);
        cache.insert(kind, Arc::new(fuse::compile(&prog, self.cfg, self.lanes)));
        let cycles = self.execute(&prog, binding);
        cache.stats_mut().record_tier1(cycles);
        cycles
    }

    /// Executes a compiled (tier-2) program: a linear walk over the
    /// fused trace with no counter updates, no branch resolution, and
    /// no per-tuple dispatch. Returns the same cycle count interpreting
    /// the source program would.
    ///
    /// # Panics
    ///
    /// Panics if a fault injector is armed (the compiled tier skips the
    /// per-lane paths the injector's RNG order and the parity/SECDED
    /// write-path metadata depend on), or if the program was
    /// specialized for a different configuration or lane count.
    pub fn execute_compiled(&mut self, cp: &CompiledProgram, binding: &Binding) -> Cycle {
        assert!(
            self.fault.is_none(),
            "compiled tier requires a healthy array"
        );
        assert_eq!(cp.config(), self.cfg, "{}: config mismatch", cp.name());
        assert_eq!(cp.lanes(), self.lanes, "{}: lane-count mismatch", cp.name());
        // Every operand is resolved to `SegSel::At`, so raw μops never
        // consult the counters; one zeroed file satisfies the
        // interpreter leaves' signature without allocation.
        let counters = CounterFile::new();
        for op in cp.ops() {
            match *op {
                CompiledOp::Raw(ref uop) => self.exec_arith(uop, binding, &counters),
                CompiledOp::Fused {
                    a,
                    b,
                    carry_in,
                    dst,
                    src,
                    masked,
                    keep,
                } => {
                    let ra = self.resolve(&a, binding, &counters);
                    let rb = self.resolve(&b, binding, &counters);
                    let rd = self.resolve(&dst, binding, &counters);
                    self.do_fused(ra, rb, rd, carry_in, src, masked, keep);
                }
            }
        }
        cp.cycles()
    }

    /// Fused compute + writeback: one pass over the bit-planes senses
    /// `ra`/`rb`, evaluates every logic layer, advances the carry
    /// recurrence, and stores `src` straight into `rd` — the
    /// interpreter's `do_blc` + `write_row` pair without materializing
    /// the latch planes the liveness pass proved dead.
    ///
    /// Aliasing (`rd == ra`, `rd == rb`, even both) is safe: each
    /// `(bit, word)` cell is read in the same iteration that writes it
    /// and never revisited.
    #[allow(clippy::too_many_arguments)]
    fn do_fused(
        &mut self,
        ra: usize,
        rb: usize,
        rd: usize,
        carry_in: CarryIn,
        src: ComputeSrc,
        masked: bool,
        keep: LatchKeep,
    ) {
        let (bits, words) = (self.bits, self.words);
        let pl = bits * words;
        match carry_in {
            CarryIn::Stored => {}
            CarryIn::Zero => self.carry.fill(0),
            CarryIn::One => self.carry.copy_from_slice(&self.full),
        }
        if keep == LatchKeep::NONE {
            // Hot shape: an interior op with every latch plane dead.
            // Select the writeback plane with lane masks so the word
            // loop is branchless, and zip per-row slices so it carries
            // no bounds checks — LLVM vectorizes it straight across
            // the packed words. Aliasing (`rd == ra`, `rd == rb`, or
            // both, as in `acc += p` / `p += p`) just reads the word
            // being written before updating it, exactly like the
            // general loop below.
            let sel = PlaneSel::of(src);
            let carry = &mut self.carry[..words];
            let full = &self.full[..words];
            // Unmasked stores blend against the live-lane mask: the
            // packed tails are zero on both sides, so that blend is an
            // exact store.
            let store: &[u64] = if masked { &self.mask[..words] } else { full };
            let lanes = full.iter().zip(store);
            if rd == ra && rd == rb {
                let pd = &mut self.storage[rd * pl..(rd + 1) * pl];
                for drow in pd.chunks_exact_mut(words) {
                    for ((d, c), (&f, &sm)) in
                        drow.iter_mut().zip(carry.iter_mut()).zip(lanes.clone())
                    {
                        let av = *d;
                        fused_word(av, av, c, f, sm, d, sel);
                    }
                }
            } else if rd == ra {
                let (pb, pd) = rows_sd(&mut self.storage, pl, rb, rd);
                for (brow, drow) in pb.chunks_exact(words).zip(pd.chunks_exact_mut(words)) {
                    for (((d, &bv), c), (&f, &sm)) in drow
                        .iter_mut()
                        .zip(brow)
                        .zip(carry.iter_mut())
                        .zip(lanes.clone())
                    {
                        let av = *d;
                        fused_word(av, bv, c, f, sm, d, sel);
                    }
                }
            } else if rd == rb {
                let (pa, pd) = rows_sd(&mut self.storage, pl, ra, rd);
                for (arow, drow) in pa.chunks_exact(words).zip(pd.chunks_exact_mut(words)) {
                    for (((d, &av), c), (&f, &sm)) in drow
                        .iter_mut()
                        .zip(arow)
                        .zip(carry.iter_mut())
                        .zip(lanes.clone())
                    {
                        let bv = *d;
                        fused_word(av, bv, c, f, sm, d, sel);
                    }
                }
            } else {
                let (pa, pb, pd) = rows_abd(&mut self.storage, pl, ra, rb, rd);
                for (arow, (brow, drow)) in pa
                    .chunks_exact(words)
                    .zip(pb.chunks_exact(words).zip(pd.chunks_exact_mut(words)))
                {
                    for ((((d, &av), &bv), c), (&f, &sm)) in drow
                        .iter_mut()
                        .zip(arow)
                        .zip(brow)
                        .zip(carry.iter_mut())
                        .zip(lanes.clone())
                    {
                        fused_word(av, bv, c, f, sm, d, sel);
                    }
                }
            }
            // The latch planes the liveness pass proved dead stay
            // stale; the final op of every compiled program carries
            // `LatchKeep::ALL` and rewrites them all before any read.
            self.blc.valid = true;
            return;
        }
        let (base_a, base_b, base_d) = (ra * pl, rb * pl, rd * pl);
        let this = &mut *self;
        for b in 0..bits {
            let o = b * words;
            for w in 0..words {
                let av = this.storage[base_a + o + w];
                let bv = this.storage[base_b + o + w];
                let and = av & bv;
                let or = av | bv;
                let xor = av ^ bv;
                let c = this.carry[w];
                let sum = xor ^ c;
                this.carry[w] = and | (c & xor);
                if keep.and {
                    this.blc.and[o + w] = and;
                }
                if keep.or {
                    this.blc.or[o + w] = or;
                }
                if keep.xor {
                    this.blc.xor[o + w] = xor;
                }
                if keep.sum {
                    this.blc.sum[o + w] = sum;
                }
                // The compute just ran, so complements are
                // unconditional — no `valid` gate like `src_word`.
                let v = match src {
                    ComputeSrc::And => and,
                    ComputeSrc::Nand => and ^ this.full[w],
                    ComputeSrc::Or => or,
                    ComputeSrc::Nor => or ^ this.full[w],
                    ComputeSrc::Xor => xor,
                    ComputeSrc::Xnor => xor ^ this.full[w],
                    ComputeSrc::Add => sum,
                    ComputeSrc::Shift | ComputeSrc::Mask => {
                        unreachable!("fuser only fuses latch-plane writebacks")
                    }
                };
                let i = base_d + o + w;
                this.storage[i] = if masked {
                    blend(this.storage[i], v, this.mask[w])
                } else {
                    v
                };
            }
        }
        this.blc.valid = true;
    }

    #[inline]
    fn reg_row(&self, vreg: u32, seg: u32) -> usize {
        assert!(
            vreg < ARCH_VREGS + SCRATCH_VREGS,
            "register {vreg} out of range"
        );
        let segs = self.cfg.segments();
        assert!(seg < segs, "segment {seg} out of range");
        (vreg * segs + seg) as usize
    }

    #[inline]
    fn resolve(&self, op: &Operand, binding: &Binding, counters: &CounterFile) -> usize {
        let vreg = match op.slot {
            VSlot::D => u32::from(binding.d),
            VSlot::S1 => u32::from(binding.s1),
            VSlot::S2 => u32::from(binding.s2),
            VSlot::Mask => 0,
            VSlot::Scratch(k) => {
                assert!(u32::from(k) < SCRATCH_VREGS, "scratch {k} out of range");
                ARCH_VREGS + u32::from(k)
            }
        };
        let seg = match op.seg {
            SegSel::Up(ctr) => counters.seg_up(ctr),
            SegSel::Down(ctr) => counters.seg_down(ctr),
            SegSel::At(k) => u32::from(k),
        };
        self.reg_row(vreg, seg)
    }

    /// One packed word of a writeback source: bit-plane `b`, word `w`.
    ///
    /// Complement sources derive from the stored positive planes over
    /// the live lanes; before the first `blc` they read zero like every
    /// other latch output.
    #[inline]
    fn src_word(&self, src: ComputeSrc, b: usize, w: usize) -> u64 {
        let i = b * self.words + w;
        match src {
            ComputeSrc::And => self.blc.and[i],
            ComputeSrc::Nand => {
                if self.blc.valid {
                    self.blc.and[i] ^ self.full[w]
                } else {
                    0
                }
            }
            ComputeSrc::Or => self.blc.or[i],
            ComputeSrc::Nor => {
                if self.blc.valid {
                    self.blc.or[i] ^ self.full[w]
                } else {
                    0
                }
            }
            ComputeSrc::Xor => self.blc.xor[i],
            ComputeSrc::Xnor => {
                if self.blc.valid {
                    self.blc.xor[i] ^ self.full[w]
                } else {
                    0
                }
            }
            ComputeSrc::Add => self.blc.sum[i],
            ComputeSrc::Shift => self.shifter[i],
            ComputeSrc::Mask => {
                if b == 0 {
                    self.mask[w]
                } else {
                    0
                }
            }
        }
    }

    /// One lane's value of a writeback source (fault-path writebacks).
    #[inline]
    fn src_lane(&self, src: ComputeSrc, lane: usize) -> u32 {
        let (bits, words) = (self.bits, self.words);
        let pick = |planes: &[u64]| lane_get(planes, words, bits, lane);
        match src {
            ComputeSrc::And => pick(&self.blc.and),
            ComputeSrc::Nand => {
                if self.blc.valid {
                    !pick(&self.blc.and) & self.seg_mask
                } else {
                    0
                }
            }
            ComputeSrc::Or => pick(&self.blc.or),
            ComputeSrc::Nor => {
                if self.blc.valid {
                    !pick(&self.blc.or) & self.seg_mask
                } else {
                    0
                }
            }
            ComputeSrc::Xor => pick(&self.blc.xor),
            ComputeSrc::Xnor => {
                if self.blc.valid {
                    !pick(&self.blc.xor) & self.seg_mask
                } else {
                    0
                }
            }
            ComputeSrc::Add => pick(&self.blc.sum),
            ComputeSrc::Shift => pick(&self.shifter),
            ComputeSrc::Mask => u32::from(word_bit(&self.mask, lane)),
        }
    }

    /// Writes a computed source into a row. Healthy runs blend whole
    /// bit-planes; with an injector attached, falls back to per-lane
    /// stores so `corrupt_write` fires in ascending lane order for the
    /// mask-selected lanes only — the scalar executor's exact RNG
    /// order.
    fn write_row(&mut self, row: usize, src: ComputeSrc, masked: bool) {
        if self.fault.is_some() {
            for lane in 0..self.lanes {
                if !masked || word_bit(&self.mask, lane) {
                    let v = self.src_lane(src, lane);
                    self.store_cell(row, lane, v);
                }
            }
            return;
        }
        let (bits, words) = (self.bits, self.words);
        let base = row * self.plane_len();
        for b in 0..bits {
            for w in 0..words {
                let v = self.src_word(src, b, w);
                let i = base + b * words + w;
                if masked {
                    self.storage[i] = blend(self.storage[i], v, self.mask[w]);
                } else {
                    self.storage[i] = v;
                }
            }
        }
    }

    fn exec_arith(&mut self, uop: &ArithUop, binding: &Binding, counters: &CounterFile) {
        match *uop {
            ArithUop::Nop => {}
            ArithUop::Read { op } => {
                let row = self.resolve(&op, binding, counters);
                self.check_row(row);
                let phys = self.phys_row(row);
                let this = &mut *self;
                let planes = &this.storage[phys * this.bits * this.words..];
                for (lane, out) in this.data_out.iter_mut().enumerate() {
                    *out = lane_get(planes, this.words, this.bits, lane);
                }
            }
            ArithUop::WriteConst { op, value, masked } => {
                let row = self.resolve(&op, binding, counters);
                let value = value & self.seg_mask;
                if self.fault.is_some() {
                    for lane in 0..self.lanes {
                        if !masked || word_bit(&self.mask, lane) {
                            self.store_cell(row, lane, value);
                        }
                    }
                } else {
                    let (bits, words) = (self.bits, self.words);
                    let base = row * self.plane_len();
                    for b in 0..bits {
                        for w in 0..words {
                            let v = if (value >> b) & 1 == 1 {
                                self.full[w]
                            } else {
                                0
                            };
                            let i = base + b * words + w;
                            if masked {
                                self.storage[i] = blend(self.storage[i], v, self.mask[w]);
                            } else {
                                self.storage[i] = v;
                            }
                        }
                    }
                }
            }
            ArithUop::WriteDataIn { op } => {
                let row = self.resolve(&op, binding, counters);
                if self.fault.is_some() {
                    for lane in 0..self.lanes {
                        let v = self.data_in[lane] & self.seg_mask;
                        self.store_cell(row, lane, v);
                    }
                } else {
                    let range = self.row_range(row);
                    let this = &mut *self;
                    let planes = &mut this.storage[range];
                    planes.fill(0);
                    for (lane, &d) in this.data_in.iter().enumerate() {
                        let (w, s) = (lane / WORD_BITS, lane % WORD_BITS);
                        let mut rest = d & this.seg_mask;
                        while rest != 0 {
                            let b = rest.trailing_zeros() as usize;
                            planes[b * this.words + w] |= 1u64 << s;
                            rest &= rest - 1;
                        }
                    }
                }
            }
            ArithUop::Blc { a, b, carry_in } => {
                let ra = self.resolve(&a, binding, counters);
                let rb = self.resolve(&b, binding, counters);
                self.do_blc(ra, rb, carry_in);
            }
            ArithUop::Writeback { dst, src, masked } => match dst {
                WbDest::Row(op) => {
                    let row = self.resolve(&op, binding, counters);
                    self.write_row(row, src, masked);
                }
                WbDest::MaskReg => {
                    // The mask latch takes bit 0 of the source; the old
                    // mask is both the predication gate and the kept
                    // value.
                    for w in 0..self.words {
                        let v = self.src_word(src, 0, w);
                        self.mask[w] = if masked {
                            blend(self.mask[w], v, self.mask[w])
                        } else {
                            v
                        };
                    }
                }
                WbDest::XReg => {
                    let (bits, words) = (self.bits, self.words);
                    for b in 0..bits {
                        for w in 0..words {
                            let v = self.src_word(src, b, w);
                            let i = b * words + w;
                            if masked {
                                self.xreg[i] = blend(self.xreg[i], v, self.mask[w]);
                            } else {
                                self.xreg[i] = v;
                            }
                        }
                    }
                }
            },
            ArithUop::LoadShifter { op } => {
                let row = self.resolve(&op, binding, counters);
                self.check_row(row);
                let range = self.row_range(self.phys_row(row));
                let this = &mut *self;
                this.shifter.copy_from_slice(&this.storage[range]);
            }
            ArithUop::StoreShifter { op, masked } => {
                let row = self.resolve(&op, binding, counters);
                self.write_row(row, ComputeSrc::Shift, masked);
            }
            ArithUop::LoadXReg { op } => {
                let row = self.resolve(&op, binding, counters);
                self.check_row(row);
                let range = self.row_range(self.phys_row(row));
                let this = &mut *self;
                this.xreg.copy_from_slice(&this.storage[range]);
            }
            ArithUop::ShiftLeft { masked } => self.shift_left(masked, false),
            ArithUop::ShiftRight { masked } => self.shift_right(masked, false),
            ArithUop::RotateLeft { masked } => self.shift_left(masked, true),
            ArithUop::RotateRight { masked } => self.shift_right(masked, true),
            ArithUop::MaskShift => {
                let (bits, words) = (self.bits, self.words);
                for b in 0..bits - 1 {
                    for w in 0..words {
                        self.xreg[b * words + w] = self.xreg[(b + 1) * words + w];
                    }
                }
                self.xreg[(bits - 1) * words..].fill(0);
            }
            ArithUop::SetMask { src, invert } => {
                let msb = (self.bits - 1) * self.words;
                for w in 0..self.words {
                    let bit = match src {
                        MaskSrc::XRegLsb => self.xreg[w],
                        MaskSrc::XRegMsb => self.xreg[msb + w],
                        MaskSrc::AddMsb => self.blc.sum[msb + w],
                        MaskSrc::Carry => self.carry[w],
                        MaskSrc::AllOnes => self.full[w],
                    };
                    self.mask[w] = if invert { bit ^ self.full[w] } else { bit };
                }
            }
            ArithUop::SetCarry { value } => {
                if value {
                    let this = &mut *self;
                    this.carry.copy_from_slice(&this.full);
                } else {
                    self.carry.fill(0);
                }
            }
            ArithUop::ClearSpare => {
                self.spare.fill(0);
            }
        }
    }

    /// Bit-line compute: senses rows `ra` and `rb` and latches every
    /// logic layer's output, one packed word at a time. Carry
    /// propagation across bit positions is the word-parallel recurrence
    /// `carry' = (a & b) | (carry & (a ^ b))` — all lanes advance one
    /// bit per iteration, replacing the per-lane Manchester chain.
    fn do_blc(&mut self, ra: usize, rb: usize, carry_in: CarryIn) {
        self.check_row(ra);
        self.check_row(rb);
        let (bits, words) = (self.bits, self.words);
        let pl = bits * words;
        let (pra, prb) = (self.phys_row(ra), self.phys_row(rb));
        let faulty = self.fault.is_some();
        if faulty {
            // Sense-amp glitches corrupt the operands *before* the
            // logic layers latch them. Unpack and re-pack per lane so
            // the injector sees the scalar executor's exact call order
            // (lane 0: a then b, lane 1: a then b, ...).
            for lane in 0..self.lanes {
                let av = lane_get(&self.storage[pra * pl..(pra + 1) * pl], words, bits, lane);
                let bv = lane_get(&self.storage[prb * pl..(prb + 1) * pl], words, bits, lane);
                let f = self.fault.as_mut().expect("fault state present");
                let av = f.inj.corrupt_sense(pra as u32, lane as u32, av);
                let bv = f.inj.corrupt_sense(prb as u32, lane as u32, bv);
                lane_set(&mut self.scr_a, words, bits, lane, av);
                lane_set(&mut self.scr_b, words, bits, lane, bv);
            }
        }
        let this = &mut *self;
        let (pa, pb): (&[u64], &[u64]) = if faulty {
            (&this.scr_a, &this.scr_b)
        } else {
            (
                &this.storage[pra * pl..(pra + 1) * pl],
                &this.storage[prb * pl..(prb + 1) * pl],
            )
        };
        match carry_in {
            CarryIn::Stored => {}
            CarryIn::Zero => this.carry.fill(0),
            CarryIn::One => this.carry.copy_from_slice(&this.full),
        }
        for b in 0..bits {
            let o = b * words;
            for w in 0..words {
                let av = pa[o + w];
                let bv = pb[o + w];
                let and = av & bv;
                let xor = av ^ bv;
                let c = this.carry[w];
                this.blc.and[o + w] = and;
                this.blc.or[o + w] = av | bv;
                this.blc.xor[o + w] = xor;
                this.blc.sum[o + w] = xor ^ c;
                this.carry[w] = and | (c & xor);
            }
        }
        this.blc.valid = true;
    }

    /// Shift (or rotate) the constant shifter left one bit: bit-plane
    /// `b` takes plane `b-1`, plane 0 takes the spare shifter (shift)
    /// or the outgoing MSB plane (rotate), and the spare catches the
    /// outgoing MSB (shift only).
    fn shift_left(&mut self, masked: bool, rotate: bool) {
        let (bits, words) = (self.bits, self.words);
        let this = &mut *self;
        this.scr_c
            .copy_from_slice(&this.shifter[(bits - 1) * words..bits * words]);
        for b in (1..bits).rev() {
            for w in 0..words {
                let v = this.shifter[(b - 1) * words + w];
                let i = b * words + w;
                this.shifter[i] = if masked {
                    blend(this.shifter[i], v, this.mask[w])
                } else {
                    v
                };
            }
        }
        for w in 0..words {
            let v = if rotate { this.scr_c[w] } else { this.spare[w] };
            this.shifter[w] = if masked {
                blend(this.shifter[w], v, this.mask[w])
            } else {
                v
            };
        }
        if !rotate {
            for w in 0..words {
                this.spare[w] = if masked {
                    blend(this.spare[w], this.scr_c[w], this.mask[w])
                } else {
                    this.scr_c[w]
                };
            }
        }
    }

    /// Shift (or rotate) the constant shifter right one bit: bit-plane
    /// `b` takes plane `b+1`, the MSB plane takes the spare shifter
    /// (shift) or the outgoing LSB plane (rotate), and the spare
    /// catches the outgoing LSB (shift only).
    fn shift_right(&mut self, masked: bool, rotate: bool) {
        let (bits, words) = (self.bits, self.words);
        let this = &mut *self;
        this.scr_c.copy_from_slice(&this.shifter[..words]);
        for b in 0..bits - 1 {
            for w in 0..words {
                let v = this.shifter[(b + 1) * words + w];
                let i = b * words + w;
                this.shifter[i] = if masked {
                    blend(this.shifter[i], v, this.mask[w])
                } else {
                    v
                };
            }
        }
        let msb = (bits - 1) * words;
        for w in 0..words {
            let v = if rotate { this.scr_c[w] } else { this.spare[w] };
            this.shifter[msb + w] = if masked {
                blend(this.shifter[msb + w], v, this.mask[w])
            } else {
                v
            };
        }
        if !rotate {
            for w in 0..words {
                this.spare[w] = if masked {
                    blend(this.spare[w], this.scr_c[w], this.mask[w])
                } else {
                    this.scr_c[w]
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_uop::{MacroOpKind, ProgramLibrary};

    fn run(cfg: HybridConfig, kind: MacroOpKind, a: u32, b: u32) -> u32 {
        let mut arr = EveArray::new(cfg, 2);
        arr.write_element(1, 0, a);
        arr.write_element(2, 0, b);
        // Lane 1 gets swapped operands as a free second test point.
        arr.write_element(1, 1, b);
        arr.write_element(2, 1, a);
        let prog = ProgramLibrary::new(cfg).program(kind);
        arr.execute(&prog, &Binding::new(3, 1, 2));
        arr.read_element(3, 0)
    }

    #[test]
    fn add_is_wrapping_add_on_every_config() {
        for cfg in HybridConfig::all() {
            assert_eq!(run(cfg, MacroOpKind::Add, 7, 8), 15, "{cfg}");
            assert_eq!(
                run(cfg, MacroOpKind::Add, u32::MAX, 1),
                0,
                "{cfg} wraparound"
            );
            assert_eq!(
                run(cfg, MacroOpKind::Add, 0xDEAD_BEEF, 0x1234_5678),
                0xDEAD_BEEFu32.wrapping_add(0x1234_5678),
                "{cfg}"
            );
        }
    }

    #[test]
    fn sub_borrows_across_segments() {
        for cfg in HybridConfig::all() {
            assert_eq!(run(cfg, MacroOpKind::Sub, 1000, 1), 999, "{cfg}");
            assert_eq!(
                run(cfg, MacroOpKind::Sub, 0, 1),
                u32::MAX,
                "{cfg} borrow chain"
            );
        }
    }

    #[test]
    fn logic_ops() {
        let a = 0xF0F0_A5A5;
        let b = 0x0FF0_5AA5;
        for cfg in HybridConfig::all() {
            assert_eq!(run(cfg, MacroOpKind::And, a, b), a & b, "{cfg}");
            assert_eq!(run(cfg, MacroOpKind::Or, a, b), a | b, "{cfg}");
            assert_eq!(run(cfg, MacroOpKind::Xor, a, b), a ^ b, "{cfg}");
            assert_eq!(run(cfg, MacroOpKind::Not, a, b), !a, "{cfg}");
            assert_eq!(run(cfg, MacroOpKind::Mv, a, b), a, "{cfg}");
        }
    }

    #[test]
    fn mul_matches_wrapping_mul() {
        for cfg in HybridConfig::all() {
            assert_eq!(run(cfg, MacroOpKind::Mul, 1000, 1001), 1_001_000, "{cfg}");
            assert_eq!(
                run(cfg, MacroOpKind::Mul, 0x1234_5678, 0x9ABC_DEF0),
                0x1234_5678u32.wrapping_mul(0x9ABC_DEF0),
                "{cfg}"
            );
        }
    }

    #[test]
    fn divu_remu_including_by_zero() {
        for cfg in HybridConfig::all() {
            assert_eq!(run(cfg, MacroOpKind::Divu, 100, 7), 14, "{cfg}");
            assert_eq!(run(cfg, MacroOpKind::Remu, 100, 7), 2, "{cfg}");
            // RVV semantics: x / 0 = all ones, x % 0 = x.
            assert_eq!(run(cfg, MacroOpKind::Divu, 5, 0), u32::MAX, "{cfg}");
            assert_eq!(run(cfg, MacroOpKind::Remu, 5, 0), 5, "{cfg}");
        }
    }

    #[test]
    fn lanes_are_independent() {
        for cfg in HybridConfig::all() {
            let mut arr = EveArray::new(cfg, 8);
            for lane in 0..8 {
                arr.write_element(1, lane, lane as u32 * 3 + 1);
                arr.write_element(2, lane, lane as u32 * 7 + 11);
            }
            let prog = ProgramLibrary::new(cfg).program(MacroOpKind::Mul);
            arr.execute(&prog, &Binding::new(4, 1, 2));
            for lane in 0..8 {
                let a = lane as u32 * 3 + 1;
                let b = lane as u32 * 7 + 11;
                assert_eq!(arr.read_element(4, lane), a.wrapping_mul(b), "{cfg}");
            }
        }
    }

    #[test]
    fn shifts_by_immediate() {
        let x = 0xDEAD_BEEF;
        for cfg in HybridConfig::all() {
            for k in [0u8, 1, 3, 8, 13, 16, 31] {
                assert_eq!(
                    run(cfg, MacroOpKind::SllI(k), x, 0),
                    x << k,
                    "{cfg} sll {k}"
                );
                assert_eq!(
                    run(cfg, MacroOpKind::SrlI(k), x, 0),
                    x >> k,
                    "{cfg} srl {k}"
                );
                assert_eq!(
                    run(cfg, MacroOpKind::SraI(k), x, 0),
                    ((x as i32) >> k) as u32,
                    "{cfg} sra {k}"
                );
            }
        }
    }

    #[test]
    fn variable_shifts() {
        let x = 0x8001_7FFE;
        for cfg in HybridConfig::all() {
            for k in [0u32, 1, 5, 12, 20, 31] {
                assert_eq!(run(cfg, MacroOpKind::SllV, x, k), x << k, "{cfg} sllv {k}");
                assert_eq!(run(cfg, MacroOpKind::SrlV, x, k), x >> k, "{cfg} srlv {k}");
                assert_eq!(
                    run(cfg, MacroOpKind::SraV, x, k),
                    ((x as i32) >> k) as u32,
                    "{cfg} srav {k}"
                );
            }
        }
    }

    #[test]
    fn compares_set_mask_rows() {
        let cases: [(u32, u32); 6] = [
            (5, 9),
            (9, 5),
            (7, 7),
            (0, u32::MAX),
            (0x8000_0000, 1),
            (u32::MAX, u32::MAX),
        ];
        for cfg in HybridConfig::all() {
            for &(a, b) in &cases {
                assert_eq!(
                    run(cfg, MacroOpKind::CmpLtu, a, b) & 1,
                    u32::from(a < b),
                    "{cfg} ltu {a} {b}"
                );
                assert_eq!(
                    run(cfg, MacroOpKind::CmpLt, a, b) & 1,
                    u32::from((a as i32) < (b as i32)),
                    "{cfg} lt {a} {b}"
                );
                assert_eq!(
                    run(cfg, MacroOpKind::CmpEq, a, b) & 1,
                    u32::from(a == b),
                    "{cfg} eq"
                );
                assert_eq!(
                    run(cfg, MacroOpKind::CmpNe, a, b) & 1,
                    u32::from(a != b),
                    "{cfg} ne"
                );
            }
        }
    }

    #[test]
    fn min_max_signed_and_unsigned() {
        let cases: [(u32, u32); 4] = [(5, 9), (0x8000_0000, 1), (u32::MAX, 0), (42, 42)];
        for cfg in HybridConfig::all() {
            for &(a, b) in &cases {
                assert_eq!(run(cfg, MacroOpKind::Minu, a, b), a.min(b), "{cfg} minu");
                assert_eq!(run(cfg, MacroOpKind::Maxu, a, b), a.max(b), "{cfg} maxu");
                assert_eq!(
                    run(cfg, MacroOpKind::Min, a, b),
                    (a as i32).min(b as i32) as u32,
                    "{cfg} min"
                );
                assert_eq!(
                    run(cfg, MacroOpKind::Max, a, b),
                    (a as i32).max(b as i32) as u32,
                    "{cfg} max"
                );
            }
        }
    }

    #[test]
    fn merge_selects_by_v0() {
        for cfg in HybridConfig::all() {
            let mut arr = EveArray::new(cfg, 4);
            for lane in 0..4 {
                arr.write_element(1, lane, 111);
                arr.write_element(2, lane, 222);
                arr.write_mask_bit(0, lane, lane % 2 == 0);
            }
            let prog = ProgramLibrary::new(cfg).program(MacroOpKind::Merge);
            arr.execute(&prog, &Binding::new(3, 1, 2));
            for lane in 0..4 {
                let want = if lane % 2 == 0 { 111 } else { 222 };
                assert_eq!(arr.read_element(3, lane), want, "{cfg} lane {lane}");
            }
        }
    }

    #[test]
    fn mask_register_ops() {
        for cfg in HybridConfig::all() {
            let mut arr = EveArray::new(cfg, 4);
            let a = [true, true, false, false];
            let b = [true, false, true, false];
            for lane in 0..4 {
                arr.write_mask_bit(1, lane, a[lane]);
                arr.write_mask_bit(2, lane, b[lane]);
            }
            let lib = ProgramLibrary::new(cfg);
            for (kind, f) in [
                (
                    MacroOpKind::MaskAnd,
                    (|x, y| x && y) as fn(bool, bool) -> bool,
                ),
                (MacroOpKind::MaskOr, |x, y| x || y),
                (MacroOpKind::MaskXor, |x, y| x != y),
            ] {
                let prog = lib.program(kind);
                arr.execute(&prog, &Binding::new(3, 1, 2));
                for lane in 0..4 {
                    assert_eq!(
                        arr.read_mask_bit(3, lane),
                        f(a[lane], b[lane]),
                        "{cfg} {kind:?} lane {lane}"
                    );
                }
            }
            let prog = lib.program(MacroOpKind::MaskNot);
            arr.execute(&prog, &Binding::new(3, 1, 2));
            for (lane, &av) in a.iter().enumerate() {
                assert_eq!(arr.read_mask_bit(3, lane), !av, "{cfg} not");
            }
        }
    }

    #[test]
    fn splat_broadcasts() {
        for cfg in HybridConfig::all() {
            let mut arr = EveArray::new(cfg, 4);
            let prog = ProgramLibrary::new(cfg).program(MacroOpKind::Splat(0xCAFE_BABE));
            arr.execute(&prog, &Binding::new(5, 0, 0));
            for lane in 0..4 {
                assert_eq!(arr.read_element(5, lane), 0xCAFE_BABE, "{cfg}");
            }
        }
    }

    #[test]
    fn element_roundtrip() {
        for cfg in HybridConfig::all() {
            let mut arr = EveArray::new(cfg, 3);
            arr.write_element(17, 2, 0x8765_4321);
            assert_eq!(arr.read_element(17, 2), 0x8765_4321);
            assert_eq!(arr.read_element(17, 0), 0);
        }
    }

    #[test]
    fn execution_cycle_counts_match_counting_executor() {
        use eve_uop::count_cycles;
        for cfg in HybridConfig::all() {
            let lib = ProgramLibrary::new(cfg);
            for kind in [
                MacroOpKind::Add,
                MacroOpKind::Mul,
                MacroOpKind::Sub,
                MacroOpKind::SllI(5),
                MacroOpKind::Minu,
            ] {
                let prog = lib.program(kind);
                let mut arr = EveArray::new(cfg, 2);
                let real = arr.execute(&prog, &Binding::new(3, 1, 2));
                let counted = count_cycles(&prog, cfg);
                assert_eq!(real, counted, "{cfg} {kind:?}");
            }
        }
    }
}

#[cfg(test)]
mod fault_integration_tests {
    use super::*;
    use crate::fault::{Fault, FaultConfig, FaultInjector, FaultLayer};
    use eve_uop::{MacroOpKind, ProgramLibrary};

    /// EVE-32: one segment per register, so register `v` is row `v`.
    fn cfg32() -> HybridConfig {
        HybridConfig::new(32).unwrap()
    }

    #[test]
    fn zero_fault_injector_is_bit_exact_and_silent() {
        for cfg in HybridConfig::all() {
            let lib = ProgramLibrary::new(cfg);
            let mut clean = EveArray::new(cfg, 4);
            let mut faulty = EveArray::new(cfg, 4);
            faulty.attach_injector(FaultInjector::new(FaultConfig::none(1234)));
            for lane in 0..4 {
                let (a, b) = (lane as u32 * 0x1357 + 11, lane as u32 * 0x2468 + 7);
                clean.write_element(1, lane, a);
                clean.write_element(2, lane, b);
                faulty.write_element(1, lane, a);
                faulty.write_element(2, lane, b);
            }
            for kind in [MacroOpKind::Add, MacroOpKind::Mul, MacroOpKind::Divu] {
                let prog = lib.program(kind);
                clean.execute(&prog, &Binding::new(3, 1, 2));
                faulty.execute(&prog, &Binding::new(3, 1, 2));
                for lane in 0..4 {
                    assert_eq!(
                        clean.read_element(3, lane),
                        faulty.read_element(3, lane),
                        "{cfg} {kind:?}"
                    );
                }
            }
            assert_eq!(faulty.parity_alarms(), 0, "{cfg}");
        }
    }

    #[test]
    fn writeback_fault_raises_parity_alarm_on_next_read() {
        let cfg = cfg32();
        let mut arr = EveArray::new(cfg, 2);
        let mut fc = FaultConfig::none(0);
        // Row 3 = register v3 (the destination). Flip bit 7 at the
        // writeback layer, any cycle.
        fc.scripted.push(Fault::transient(
            FaultLayer::Writeback,
            3,
            0,
            7,
            0,
            u64::MAX,
        ));
        arr.attach_injector(FaultInjector::new(fc));
        arr.write_element(1, 0, 100);
        arr.write_element(2, 0, 23);
        let lib = ProgramLibrary::new(cfg);
        arr.execute(&lib.program(MacroOpKind::Add), &Binding::new(3, 1, 2));
        // The corrupted row hasn't been re-read yet; the stored value
        // is wrong but the alarm hasn't fired.
        assert_eq!(arr.read_element(3, 0), 123 ^ 0x80);
        let before = arr.parity_alarms();
        // Any μprogram reading v3 must see the mismatch.
        arr.execute(&lib.program(MacroOpKind::Mv), &Binding::new(4, 3, 3));
        assert!(arr.parity_alarms() > before, "parity must catch the flip");
    }

    #[test]
    fn sense_fault_corrupts_result_but_stays_silent() {
        let cfg = cfg32();
        let mut arr = EveArray::new(cfg, 2);
        let mut fc = FaultConfig::none(0);
        // Row 1 = source v1. Glitch bit 0 as the bit-line compute
        // senses it, exactly once.
        fc.scripted
            .push(Fault::transient(FaultLayer::Sense, 1, 0, 0, 0, u64::MAX));
        arr.attach_injector(FaultInjector::new(fc));
        arr.write_element(1, 0, 100);
        arr.write_element(2, 0, 23);
        let lib = ProgramLibrary::new(cfg);
        arr.execute(&lib.program(MacroOpKind::Add), &Binding::new(3, 1, 2));
        assert_eq!(arr.read_element(3, 0), 101 + 23, "operand bit 0 flipped");
        // Read everything back: parity is self-consistent everywhere.
        arr.execute(&lib.program(MacroOpKind::Mv), &Binding::new(4, 3, 3));
        assert_eq!(arr.parity_alarms(), 0, "sense faults are undetectable");
    }

    #[test]
    fn stuck_cell_is_masked_when_value_matches() {
        let cfg = cfg32();
        let lib = ProgramLibrary::new(cfg);
        let mut fc = FaultConfig::none(0);
        fc.scripted.push(Fault::stuck_at(3, 0, 0, true)); // v3 bit 0 stuck at 1
        let mut arr = EveArray::new(cfg, 1);
        arr.attach_injector(FaultInjector::new(fc));
        arr.write_element(1, 0, 100);
        arr.write_element(2, 0, 23);
        // 100 + 23 = 123 has bit 0 set: the stuck bit agrees, the
        // fault is architecturally masked and parity stays clean.
        arr.execute(&lib.program(MacroOpKind::Add), &Binding::new(3, 1, 2));
        assert_eq!(arr.read_element(3, 0), 123);
        arr.execute(&lib.program(MacroOpKind::Mv), &Binding::new(4, 3, 3));
        assert_eq!(arr.parity_alarms(), 0);

        // 100 + 24 = 124 has bit 0 clear: now the stuck bit perturbs
        // the stored value and the next read alarms.
        arr.write_element(2, 0, 24);
        arr.execute(&lib.program(MacroOpKind::Add), &Binding::new(3, 1, 2));
        assert_eq!(arr.read_element(3, 0), 125);
        arr.execute(&lib.program(MacroOpKind::Mv), &Binding::new(4, 3, 3));
        assert!(arr.parity_alarms() > 0);
    }

    #[test]
    fn detach_returns_stats_and_restores_clean_operation() {
        let cfg = cfg32();
        let mut arr = EveArray::new(cfg, 1);
        let mut fc = FaultConfig::none(0);
        fc.scripted.push(Fault::transient(
            FaultLayer::Writeback,
            3,
            0,
            2,
            0,
            u64::MAX,
        ));
        arr.attach_injector(FaultInjector::new(fc));
        arr.write_element(1, 0, 8);
        arr.write_element(2, 0, 8);
        let lib = ProgramLibrary::new(cfg);
        arr.execute(&lib.program(MacroOpKind::Add), &Binding::new(3, 1, 2));
        let inj = arr.detach_injector().expect("injector attached");
        assert_eq!(inj.stats().scripted_fired, 1);
        assert!(arr.injector().is_none());
        // With the injector gone, writes are clean again.
        arr.write_element(3, 0, 16);
        assert_eq!(arr.read_element(3, 0), 16);
    }

    #[test]
    fn random_rates_eventually_corrupt_and_alarm() {
        let cfg = cfg32();
        let lib = ProgramLibrary::new(cfg);
        let mut arr = EveArray::new(cfg, 8);
        arr.attach_injector(FaultInjector::new(FaultConfig {
            seed: 42,
            stuck_rate: 0.0,
            transient_write_rate: 0.02,
            transient_sense_rate: 0.0,
            scripted: Vec::new(),
        }));
        for lane in 0..8 {
            arr.write_element(1, lane, lane as u32);
            arr.write_element(2, lane, lane as u32 * 3);
        }
        for _ in 0..50 {
            arr.execute(&lib.program(MacroOpKind::Add), &Binding::new(3, 1, 2));
            arr.execute(&lib.program(MacroOpKind::Mv), &Binding::new(4, 3, 3));
        }
        let stats = *arr.injector().unwrap().stats();
        assert!(stats.write_flips > 0, "2% over thousands of writes");
        assert!(arr.parity_alarms() > 0, "writeback flips must be caught");
    }
}

#[cfg(test)]
mod rotate_tests {
    use super::*;
    use eve_uop::{MacroOpKind, ProgramLibrary};

    #[test]
    fn rotates_match_u32_semantics_on_every_config() {
        let x = 0x8123_4567u32;
        for cfg in HybridConfig::all() {
            let lib = ProgramLibrary::new(cfg);
            for k in [0u8, 1, 5, 13, 31] {
                for (kind, want) in [
                    (MacroOpKind::RotlI(k), x.rotate_left(u32::from(k))),
                    (MacroOpKind::RotrI(k), x.rotate_right(u32::from(k))),
                ] {
                    let mut arr = EveArray::new(cfg, 2);
                    arr.write_element(1, 0, x);
                    arr.execute(&lib.program(kind), &Binding::new(3, 1, 2));
                    assert_eq!(arr.read_element(3, 0), want, "{cfg} {kind:?}");
                }
            }
        }
    }

    #[test]
    fn bit_parallel_rotate_uses_the_rotate_uops() {
        // EVE-32's rotate must be the Table II lrotate path: load,
        // k rotates, store — no shift passes.
        let cfg = HybridConfig::new(32).unwrap();
        let prog = ProgramLibrary::new(cfg).program(MacroOpKind::RotlI(5));
        assert_eq!(prog.len(), 1 + 5 + 1 + 1); // load + 5 rotates + store + ret
    }
}

#[cfg(test)]
mod mulacc_tests {
    use super::*;
    use eve_uop::{MacroOpKind, ProgramLibrary};

    #[test]
    fn mulacc_accumulates_into_existing_destination() {
        for cfg in HybridConfig::all() {
            let mut arr = EveArray::new(cfg, 2);
            arr.write_element(1, 0, 123);
            arr.write_element(2, 0, 456);
            arr.write_element(3, 0, 1_000_000); // pre-existing acc
            let prog = ProgramLibrary::new(cfg).program(MacroOpKind::MulAcc);
            arr.execute(&prog, &Binding::new(3, 1, 2));
            assert_eq!(
                arr.read_element(3, 0),
                1_000_000u32.wrapping_add(123 * 456),
                "{cfg}"
            );
        }
    }

    #[test]
    fn mulacc_costs_one_extra_seed_pass() {
        // MulAcc seeds the accumulator by copying `d` (2S+1 tuples)
        // where Mul zero-fills it (S+1): one pass of difference.
        use eve_uop::{count_cycles, HybridConfig};
        for cfg in HybridConfig::all() {
            let lib = ProgramLibrary::new(cfg);
            let mul = count_cycles(&lib.program(MacroOpKind::Mul), cfg).0;
            let macc = count_cycles(&lib.program(MacroOpKind::MulAcc), cfg).0;
            assert_eq!(macc, mul + u64::from(cfg.segments()), "{cfg}");
        }
    }
}

#[cfg(test)]
mod secded_tests {
    use super::*;
    use crate::fault::{Fault, FaultConfig, FaultInjector, FaultLayer};
    use eve_uop::{MacroOpKind, ProgramLibrary};

    /// EVE-32: one segment per register, so register `v` is row `v`.
    fn cfg32() -> HybridConfig {
        HybridConfig::new(32).unwrap()
    }

    fn secded_array(cfg: HybridConfig, lanes: usize, fc: FaultConfig) -> EveArray {
        let mut arr = EveArray::new(cfg, lanes);
        arr.attach_injector_with(FaultInjector::new(fc), DetectionMode::Secded);
        arr
    }

    #[test]
    fn writeback_transient_is_corrected_on_next_read() {
        let cfg = cfg32();
        let mut fc = FaultConfig::none(0);
        // Corrupt source v1's stored bit 7 at the writeback layer.
        fc.scripted.push(Fault::transient(
            FaultLayer::Writeback,
            1,
            0,
            7,
            0,
            u64::MAX,
        ));
        let mut arr = secded_array(cfg, 2, fc);
        arr.write_element(1, 0, 100);
        arr.write_element(2, 0, 23);
        let lib = ProgramLibrary::new(cfg);
        // The bit-line compute re-reads v1; the SECDED check corrects
        // the stored bit before the sense, so the result is exact.
        arr.execute(&lib.program(MacroOpKind::Add), &Binding::new(3, 1, 2));
        assert_eq!(arr.read_element(3, 0), 123);
        assert_eq!(arr.corrected_events(), 1);
        assert_eq!(arr.parity_alarms(), 0, "single-bit faults never alarm");
    }

    #[test]
    fn scrub_heals_rows_no_microprogram_rereads() {
        let cfg = cfg32();
        let mut fc = FaultConfig::none(0);
        // Corrupt the *destination* row: nothing re-reads v3, so only
        // a scrub pass (the drain-path check) can repair it.
        fc.scripted.push(Fault::transient(
            FaultLayer::Writeback,
            3,
            0,
            4,
            0,
            u64::MAX,
        ));
        let mut arr = secded_array(cfg, 2, fc);
        arr.write_element(1, 0, 100);
        arr.write_element(2, 0, 23);
        let lib = ProgramLibrary::new(cfg);
        arr.execute(&lib.program(MacroOpKind::Add), &Binding::new(3, 1, 2));
        assert_eq!(arr.read_element(3, 0), 123 ^ 0x10, "latent corruption");
        let s = arr.scrub();
        assert_eq!((s.corrected, s.uncorrectable), (1, 0));
        assert_eq!(arr.read_element(3, 0), 123, "scrub repaired the row");
        // A second pass finds nothing: the repair is persistent.
        let s2 = arr.scrub();
        assert_eq!((s2.corrected, s2.uncorrectable), (0, 0));
    }

    #[test]
    fn double_flip_is_flagged_uncorrectable() {
        let cfg = cfg32();
        let mut fc = FaultConfig::none(0);
        for bit in [2u8, 9] {
            fc.scripted.push(Fault::transient(
                FaultLayer::Writeback,
                1,
                0,
                bit,
                0,
                u64::MAX,
            ));
        }
        let mut arr = secded_array(cfg, 2, fc);
        arr.write_element(1, 0, 0xABCD);
        let s = arr.scrub();
        assert_eq!((s.corrected, s.uncorrectable), (0, 1));
        assert!(arr.parity_alarms() > 0, "double-bit faults alarm");
        assert_eq!(arr.corrected_events(), 0);
    }

    #[test]
    fn stuck_row_goes_hot_and_remap_retires_it() {
        let cfg = cfg32();
        let mut fc = FaultConfig::none(0);
        fc.scripted.push(Fault::stuck_at(3, 0, 0, true));
        let mut arr = secded_array(cfg, 1, fc);
        let lib = ProgramLibrary::new(cfg);
        arr.write_element(1, 0, 100);
        // Every write of an even value re-perturbs the stuck cell and
        // every following scrub corrects it again: the row keeps
        // generating events.
        for i in 0..3u32 {
            arr.write_element(2, 0, 24 + 2 * i);
            arr.execute(&lib.program(MacroOpKind::Add), &Binding::new(3, 1, 2));
            let _ = arr.scrub();
        }
        assert_eq!(arr.hot_rows(3), vec![3], "row 3 is repeatedly faulting");
        assert_eq!(arr.spares_free(), DEFAULT_SPARE_ROWS as usize);
        assert!(arr.remap_row(3));
        assert_eq!(arr.remapped_rows(), 1);
        assert_eq!(arr.spares_free(), DEFAULT_SPARE_ROWS as usize - 1);
        // The spare took the corrected contents...
        assert_eq!(arr.read_element(3, 0), 128);
        // ...and the stuck cell is out of the data path for good.
        arr.write_element(2, 0, 30);
        arr.execute(&lib.program(MacroOpKind::Add), &Binding::new(3, 1, 2));
        assert_eq!(arr.read_element(3, 0), 130);
        let s = arr.scrub();
        assert_eq!(s.corrected, 0, "no more events from the retired row");
        assert!(arr.hot_rows(1).is_empty());
    }

    #[test]
    fn remap_exhausts_at_the_spare_budget() {
        let cfg = cfg32();
        let mut arr = secded_array(cfg, 1, FaultConfig::none(7));
        for row in 0..DEFAULT_SPARE_ROWS as usize {
            assert!(arr.remap_row(row), "spare {row} available");
        }
        assert!(!arr.remap_row(10), "budget exhausted");
        assert_eq!(arr.spares_free(), 0);
    }

    #[test]
    fn secded_zero_fault_stays_bit_exact_on_every_config() {
        for cfg in HybridConfig::all() {
            let lib = ProgramLibrary::new(cfg);
            let mut clean = EveArray::new(cfg, 5);
            let mut prot = secded_array(cfg, 5, FaultConfig::none(42));
            for lane in 0..5 {
                let (a, b) = (lane as u32 * 0x9E37 + 3, lane as u32 * 0x85EB + 1);
                clean.write_element(1, lane, a);
                clean.write_element(2, lane, b);
                prot.write_element(1, lane, a);
                prot.write_element(2, lane, b);
            }
            for kind in [MacroOpKind::Add, MacroOpKind::Mul, MacroOpKind::SllI(3)] {
                let prog = lib.program(kind);
                clean.execute(&prog, &Binding::new(3, 1, 2));
                prot.execute(&prog, &Binding::new(3, 1, 2));
                for lane in 0..5 {
                    assert_eq!(
                        clean.read_element(3, lane),
                        prot.read_element(3, lane),
                        "{cfg} {kind:?}"
                    );
                }
            }
            assert_eq!(prot.parity_alarms(), 0, "{cfg}");
            assert_eq!(prot.corrected_events(), 0, "{cfg}");
            let s = prot.scrub();
            assert_eq!((s.corrected, s.uncorrectable), (0, 0), "{cfg}");
        }
    }
}

#[cfg(test)]
mod tier_tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultInjector};
    use eve_uop::{MacroOpKind, ProgramCache, ProgramLibrary};

    /// Two identically-loaded arrays with an odd lane count (word tail
    /// in play).
    fn pair(cfg: HybridConfig, lanes: usize) -> (EveArray, EveArray) {
        let mut a = EveArray::new(cfg, lanes);
        let mut b = EveArray::new(cfg, lanes);
        for lane in 0..lanes {
            let x = (lane as u32).wrapping_mul(0x9E37_79B9) ^ 0x5A5A;
            let y = (lane as u32).wrapping_mul(0x85EB_CA6B) | 1;
            for arr in [&mut a, &mut b] {
                arr.write_element(1, lane, x);
                arr.write_element(2, lane, y);
            }
        }
        (a, b)
    }

    #[test]
    fn compiled_execution_is_byte_identical_to_the_interpreter() {
        let binding = Binding::new(3, 1, 2);
        for cfg in HybridConfig::all() {
            let lib = ProgramLibrary::new(cfg);
            for kind in [
                MacroOpKind::Add,
                MacroOpKind::Sub,
                MacroOpKind::Mul,
                MacroOpKind::Xor,
                MacroOpKind::CmpLtu,
                MacroOpKind::SllI(5),
            ] {
                let (mut interp, mut compiled) = pair(cfg, 67);
                let prog = lib.program(kind);
                let cp = fuse::compile(&prog, cfg, 67);
                let c1 = interp.execute(&prog, &binding);
                let c2 = compiled.execute_compiled(&cp, &binding);
                assert_eq!(c1, c2, "{cfg} {kind:?} cycle count");
                for lane in 0..67 {
                    assert_eq!(
                        interp.read_element(3, lane),
                        compiled.read_element(3, lane),
                        "{cfg} {kind:?} lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn latch_state_persists_identically_across_compiled_programs() {
        // mul reads the latches its predecessor left behind only
        // implicitly — but a cross-program read of v3 after chained
        // executions exercises the final-op keep=ALL obligation.
        let binding = Binding::new(3, 1, 2);
        let chained = Binding::new(4, 3, 2);
        for cfg in HybridConfig::all() {
            let lib = ProgramLibrary::new(cfg);
            let (mut interp, mut compiled) = pair(cfg, 67);
            for kind in [MacroOpKind::Add, MacroOpKind::Mul, MacroOpKind::Sub] {
                let prog = lib.program(kind);
                let cp = fuse::compile(&prog, cfg, 67);
                interp.execute(&prog, &binding);
                compiled.execute_compiled(&cp, &binding);
                let follow = lib.program(MacroOpKind::Xor);
                let fcp = fuse::compile(&follow, cfg, 67);
                interp.execute(&follow, &chained);
                compiled.execute_compiled(&fcp, &chained);
                for lane in 0..67 {
                    assert_eq!(
                        interp.read_element(4, lane),
                        compiled.read_element(4, lane),
                        "{cfg} {kind:?} lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn tiered_dispatch_misses_once_then_hits() {
        let cfg = HybridConfig::new(8).unwrap();
        let lib = ProgramLibrary::new(cfg);
        let mut cache = ProgramCache::new();
        let (mut arr, mut oracle) = pair(cfg, 67);
        let binding = Binding::new(3, 1, 2);
        let c1 = arr.execute_tiered(&lib, &mut cache, MacroOpKind::Add, &binding);
        let c2 = arr.execute_tiered(&lib, &mut cache, MacroOpKind::Add, &binding);
        assert_eq!(c1, c2, "both tiers report the source program's cycles");
        let s = cache.stats();
        assert_eq!((s.misses, s.hits), (1, 1));
        assert_eq!((s.tier1_executions, s.tier2_executions), (1, 1));
        assert!(s.tier2_fused > 0, "add must retire fused super-ops");
        oracle.execute(&lib.program(MacroOpKind::Add), &binding);
        oracle.execute(&lib.program(MacroOpKind::Add), &binding);
        for lane in 0..67 {
            assert_eq!(arr.read_element(3, lane), oracle.read_element(3, lane));
        }
    }

    #[test]
    fn armed_injector_takes_the_interpreter_in_exact_rng_order() {
        let cfg = HybridConfig::new(4).unwrap();
        let lib = ProgramLibrary::new(cfg);
        let fc = FaultConfig::uniform(0xFEED, 2e-3);
        let binding = Binding::new(3, 1, 2);
        let (mut tiered, mut plain) = pair(cfg, 67);
        tiered.attach_injector(FaultInjector::new(fc.clone()));
        plain.attach_injector(FaultInjector::new(fc));
        let mut cache = ProgramCache::new();
        for kind in [MacroOpKind::Add, MacroOpKind::Mul, MacroOpKind::Add] {
            tiered.execute_tiered(&lib, &mut cache, kind, &binding);
            plain.execute(&lib.program(kind), &binding);
        }
        // Byte-identical corruption: same RNG draws in the same order.
        for lane in 0..67 {
            assert_eq!(tiered.read_element(3, lane), plain.read_element(3, lane));
        }
        let s = cache.stats();
        assert_eq!(s.tier1_executions, 3, "every execution fell back");
        assert_eq!((s.hits, s.misses), (0, 0), "the cache is never consulted");
        assert_eq!(s.tier2_executions, 0);
    }

    #[test]
    #[should_panic(expected = "healthy array")]
    fn compiled_tier_refuses_an_armed_injector() {
        let cfg = HybridConfig::new(8).unwrap();
        let lib = ProgramLibrary::new(cfg);
        let cp = fuse::compile(&lib.program(MacroOpKind::Add), cfg, 4);
        let mut arr = EveArray::new(cfg, 4);
        arr.attach_injector(FaultInjector::new(FaultConfig::none(1)));
        arr.execute_compiled(&cp, &Binding::new(3, 1, 2));
    }
}
