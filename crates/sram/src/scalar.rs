//! The scalar (lane-serial) reference executor.
//!
//! This is the original bit-accurate μprogram executor, preserved
//! verbatim as the *reference oracle* for the lane-bitsliced executor
//! in [`crate::array`]: every per-lane state element is a separate
//! scalar (`Vec<u32>` segments, `Vec<bool>` latches) and every μop
//! iterates the lanes one by one. It is deliberately simple and slow —
//! `tests/bitslice_equiv.rs` fuzzes it against [`crate::EveArray`]
//! (random μprograms × every `HybridConfig`, with and without armed
//! fault injectors) to prove the packed executor bit-exact, and
//! `hotpath_timing` measures the speedup against it.
//!
//! Compiled only for tests and under the `scalar-oracle` feature.

// Lane loops index several parallel per-lane state vectors in lock-step,
// mirroring the physical column groups; iterator zips would obscure that.
#![allow(clippy::needless_range_loop)]

use crate::array::{Binding, ARCH_VREGS, SCRATCH_VREGS};
use crate::fault::FaultInjector;
use eve_common::bits::{deposit_bits, extract_bits};
use eve_common::Cycle;
use eve_uop::{
    ArithUop, CarryIn, ComputeSrc, ControlUop, CounterFile, CounterUop, HybridConfig, MaskSrc,
    MicroProgram, Operand, SegSel, VSlot, WbDest,
};

/// Fault-injection state: the attached injector plus the per-row
/// interleaved parity bits (one per lane segment) the detection model
/// checks on μprogram reads.
#[derive(Debug, Clone)]
struct FaultState {
    inj: FaultInjector,
    /// `parity[row][lane]`: odd parity of the cell's intended value,
    /// generated at write time *before* the writeback layer can
    /// corrupt the latch.
    parity: Vec<Vec<bool>>,
    /// Parity mismatches observed on μprogram reads.
    alarms: u64,
}

fn odd_parity(v: u32) -> bool {
    v.count_ones() & 1 == 1
}

/// Combinational outputs of the last bit-line compute, latched for the
/// following writeback (per lane).
#[derive(Debug, Clone, Default)]
struct BlcLatch {
    and: Vec<u32>,
    nand: Vec<u32>,
    or: Vec<u32>,
    nor: Vec<u32>,
    xor: Vec<u32>,
    xnor: Vec<u32>,
    sum: Vec<u32>,
}

/// One bit-accurate EVE SRAM array.
///
/// Rows are addressed logically: register `v` occupies rows
/// `v * segments .. (v+1) * segments`, architectural registers first,
/// then the μprogram scratch registers. (Physically registers beyond a
/// column group's capacity spill into repurposed column stacks — see
/// DESIGN.md; the logical view is bit- and cycle-equivalent.)
#[derive(Debug, Clone)]
pub struct ScalarArray {
    cfg: HybridConfig,
    lanes: usize,
    seg_mask: u32,
    /// `storage[row][lane]`: the `n`-bit segment of each lane.
    storage: Vec<Vec<u32>>,
    /// XRegister: `n`-bit shift-right register per lane.
    xreg: Vec<u32>,
    /// Add-logic carry, held in a spare-shifter flip-flop (§III-C).
    carry: Vec<bool>,
    /// Mask latches, one per lane.
    mask: Vec<bool>,
    /// Constant shifter contents per lane.
    shifter: Vec<u32>,
    /// Spare shifter's cross-segment bit per lane.
    spare: Vec<bool>,
    /// Latched outputs of the last `blc`.
    blc: BlcLatch,
    /// Data driven out by the last `Read` μop.
    data_out: Vec<u32>,
    /// Data presented on the data-in port for `WriteDataIn`.
    data_in: Vec<u32>,
    /// Fault injection and parity tracking; `None` in healthy runs so
    /// the hot path pays nothing.
    fault: Option<FaultState>,
}

impl ScalarArray {
    /// Creates an array for configuration `cfg` with `lanes` column
    /// groups, zero-initialized.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    #[must_use]
    pub fn new(cfg: HybridConfig, lanes: usize) -> Self {
        assert!(lanes > 0, "an array needs at least one lane");
        let segs = cfg.segments() as usize;
        let rows = (ARCH_VREGS + SCRATCH_VREGS) as usize * segs;
        let bits = cfg.segment_bits();
        let seg_mask = if bits == 32 {
            u32::MAX
        } else {
            (1 << bits) - 1
        };
        Self {
            cfg,
            lanes,
            seg_mask,
            storage: vec![vec![0; lanes]; rows],
            xreg: vec![0; lanes],
            carry: vec![false; lanes],
            mask: vec![false; lanes],
            shifter: vec![0; lanes],
            spare: vec![false; lanes],
            blc: BlcLatch::default(),
            data_out: vec![0; lanes],
            data_in: vec![0; lanes],
            fault: None,
        }
    }

    /// Attaches a fault injector and switches on parity tracking: the
    /// current contents get fresh parity, and every later write
    /// regenerates its row's parity from the intended value.
    pub fn attach_injector(&mut self, mut inj: FaultInjector) {
        let rows = self.storage.len();
        inj.arm(rows as u32, self.lanes as u32, self.cfg.segment_bits());
        let parity = self
            .storage
            .iter()
            .map(|row| row.iter().map(|&v| odd_parity(v)).collect())
            .collect();
        self.fault = Some(FaultState {
            inj,
            parity,
            alarms: 0,
        });
    }

    /// Detaches and returns the injector, switching parity checking
    /// off.
    pub fn detach_injector(&mut self) -> Option<FaultInjector> {
        self.fault.take().map(|f| f.inj)
    }

    /// The attached injector, if any.
    #[must_use]
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.fault.as_ref().map(|f| &f.inj)
    }

    /// Parity mismatches observed on μprogram reads so far.
    #[must_use]
    pub fn parity_alarms(&self) -> u64 {
        self.fault.as_ref().map_or(0, |f| f.alarms)
    }

    /// Returns and clears the parity alarm counter (the recovery
    /// controller's acknowledge).
    pub fn take_parity_alarms(&mut self) -> u64 {
        match &mut self.fault {
            Some(f) => std::mem::take(&mut f.alarms),
            None => 0,
        }
    }

    /// Writes one segment cell, generating parity from the intended
    /// value and then letting the injector corrupt the latch.
    #[inline]
    fn store_cell(&mut self, row: usize, lane: usize, value: u32) {
        match &mut self.fault {
            None => self.storage[row][lane] = value,
            Some(f) => {
                f.parity[row][lane] = odd_parity(value);
                self.storage[row][lane] = f.inj.corrupt_write(row as u32, lane as u32, value);
            }
        }
    }

    /// Checks a cell's parity on a μprogram read, raising an alarm on
    /// mismatch.
    #[inline]
    fn check_parity(&mut self, row: usize, lane: usize) {
        if let Some(f) = &mut self.fault {
            if f.parity[row][lane] != odd_parity(self.storage[row][lane]) {
                f.alarms += 1;
            }
        }
    }

    /// Parity-checks every lane of a row (the row is read as one wide
    /// word, parity bits interleaved lane by lane).
    #[inline]
    fn check_row_parity(&mut self, row: usize) {
        if self.fault.is_some() {
            for lane in 0..self.lanes {
                self.check_parity(row, lane);
            }
        }
    }

    /// The configuration this array was built for.
    #[must_use]
    pub fn config(&self) -> HybridConfig {
        self.cfg
    }

    /// Number of lanes (in-situ ALUs).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Writes a 32-bit element into lane `lane` of register `vreg`
    /// (the memory-fill path, normally fed by a DTU).
    ///
    /// # Panics
    ///
    /// Panics if `vreg` or `lane` is out of range.
    pub fn write_element(&mut self, vreg: u32, lane: usize, value: u32) {
        let segs = self.cfg.segments();
        let bits = self.cfg.segment_bits();
        for s in 0..segs {
            let row = self.reg_row(vreg, s);
            let seg = extract_bits(value, s * bits, bits);
            self.store_cell(row, lane, seg);
        }
    }

    /// Reads lane `lane` of register `vreg` back as a 32-bit element.
    ///
    /// # Panics
    ///
    /// Panics if `vreg` or `lane` is out of range.
    #[must_use]
    pub fn read_element(&self, vreg: u32, lane: usize) -> u32 {
        let segs = self.cfg.segments();
        let bits = self.cfg.segment_bits();
        let mut value = 0;
        for s in 0..segs {
            let row = self.reg_row(vreg, s);
            value = deposit_bits(value, s * bits, bits, self.storage[row][lane]);
        }
        value
    }

    /// Reads the mask bit register `vreg` holds for `lane` (bit 0 of the
    /// register's first row — how compare results are stored).
    #[must_use]
    pub fn read_mask_bit(&self, vreg: u32, lane: usize) -> bool {
        let row = self.reg_row(vreg, 0);
        self.storage[row][lane] & 1 == 1
    }

    /// Writes a mask bit into register `vreg` for `lane`.
    pub fn write_mask_bit(&mut self, vreg: u32, lane: usize, value: bool) {
        let row = self.reg_row(vreg, 0);
        self.store_cell(row, lane, u32::from(value));
    }

    /// Presents per-lane data on the data-in port (consumed by
    /// `WriteDataIn` μops).
    pub fn set_data_in(&mut self, data: Vec<u32>) {
        assert_eq!(data.len(), self.lanes, "data-in width mismatch");
        self.data_in = data;
    }

    /// The data driven out by the most recent `Read` μop.
    #[must_use]
    pub fn data_out(&self) -> &[u32] {
        &self.data_out
    }

    /// Executes a μprogram against this array with `binding`, returning
    /// the cycles it took (identical to `eve_uop::count_cycles`).
    ///
    /// # Panics
    ///
    /// Panics on malformed programs (runaway loops, out-of-range rows) —
    /// generator bugs, not user errors.
    pub fn execute(&mut self, prog: &MicroProgram, binding: &Binding) -> Cycle {
        let mut counters = CounterFile::new();
        let mut pc: usize = 0;
        let mut cycles: u64 = 0;
        let tuples = prog.tuples();
        loop {
            assert!(pc < tuples.len(), "{}: pc {pc} off the end", prog.name());
            let tuple = &tuples[pc];
            cycles += 1;
            assert!(cycles < 2_000_000, "{}: runaway program", prog.name());
            if let Some(f) = &mut self.fault {
                f.inj.tick();
            }
            // Arithmetic resolves rows against start-of-cycle counters.
            self.exec_arith(&tuple.arith, binding, &counters);
            match tuple.counter {
                CounterUop::Nop => {}
                CounterUop::Init { ctr, value } => counters.init(ctr, value),
                CounterUop::Decr(ctr) => counters.decr(ctr),
                CounterUop::Incr(ctr) => counters.incr(ctr),
            }
            match tuple.control {
                ControlUop::Nop => pc += 1,
                ControlUop::Bnz { ctr, target } => {
                    if counters.take_zero_flag(ctr) {
                        pc += 1;
                    } else {
                        pc = target as usize;
                    }
                }
                ControlUop::BnzRet { ctr, target } => {
                    if counters.take_zero_flag(ctr) {
                        return Cycle(cycles);
                    }
                    pc = target as usize;
                }
                ControlUop::Bnd { ctr, target } => {
                    if counters.take_decade_flag(ctr) {
                        pc = target as usize;
                    } else {
                        pc += 1;
                    }
                }
                ControlUop::Jump { target } => pc = target as usize,
                ControlUop::Ret => return Cycle(cycles),
            }
        }
    }

    fn reg_row(&self, vreg: u32, seg: u32) -> usize {
        assert!(
            vreg < ARCH_VREGS + SCRATCH_VREGS,
            "register {vreg} out of range"
        );
        let segs = self.cfg.segments();
        assert!(seg < segs, "segment {seg} out of range");
        (vreg * segs + seg) as usize
    }

    fn resolve(&self, op: &Operand, binding: &Binding, counters: &CounterFile) -> usize {
        let vreg = match op.slot {
            VSlot::D => u32::from(binding.d()),
            VSlot::S1 => u32::from(binding.s1()),
            VSlot::S2 => u32::from(binding.s2()),
            VSlot::Mask => 0,
            VSlot::Scratch(k) => {
                assert!(u32::from(k) < SCRATCH_VREGS, "scratch {k} out of range");
                ARCH_VREGS + u32::from(k)
            }
        };
        let seg = match op.seg {
            SegSel::Up(ctr) => counters.seg_up(ctr),
            SegSel::Down(ctr) => counters.seg_down(ctr),
            SegSel::At(k) => u32::from(k),
        };
        self.reg_row(vreg, seg)
    }

    fn exec_arith(&mut self, uop: &ArithUop, binding: &Binding, counters: &CounterFile) {
        match *uop {
            ArithUop::Nop => {}
            ArithUop::Read { op } => {
                let row = self.resolve(&op, binding, counters);
                self.check_row_parity(row);
                self.data_out.copy_from_slice(&self.storage[row]);
            }
            ArithUop::WriteConst { op, value, masked } => {
                let row = self.resolve(&op, binding, counters);
                for lane in 0..self.lanes {
                    if !masked || self.mask[lane] {
                        self.store_cell(row, lane, value & self.seg_mask);
                    }
                }
            }
            ArithUop::WriteDataIn { op } => {
                let row = self.resolve(&op, binding, counters);
                for lane in 0..self.lanes {
                    let v = self.data_in[lane] & self.seg_mask;
                    self.store_cell(row, lane, v);
                }
            }
            ArithUop::Blc { a, b, carry_in } => {
                let ra = self.resolve(&a, binding, counters);
                let rb = self.resolve(&b, binding, counters);
                self.do_blc(ra, rb, carry_in);
            }
            ArithUop::Writeback { dst, src, masked } => {
                let value: Vec<u32> = (0..self.lanes)
                    .map(|lane| self.compute_value(src, lane))
                    .collect();
                match dst {
                    WbDest::Row(op) => {
                        let row = self.resolve(&op, binding, counters);
                        for lane in 0..self.lanes {
                            if !masked || self.mask[lane] {
                                self.store_cell(row, lane, value[lane]);
                            }
                        }
                    }
                    WbDest::MaskReg => {
                        for lane in 0..self.lanes {
                            if !masked || self.mask[lane] {
                                self.mask[lane] = value[lane] & 1 == 1;
                            }
                        }
                    }
                    WbDest::XReg => {
                        for lane in 0..self.lanes {
                            if !masked || self.mask[lane] {
                                self.xreg[lane] = value[lane];
                            }
                        }
                    }
                }
            }
            ArithUop::LoadShifter { op } => {
                let row = self.resolve(&op, binding, counters);
                self.check_row_parity(row);
                self.shifter.copy_from_slice(&self.storage[row]);
            }
            ArithUop::StoreShifter { op, masked } => {
                let row = self.resolve(&op, binding, counters);
                for lane in 0..self.lanes {
                    if !masked || self.mask[lane] {
                        let v = self.shifter[lane];
                        self.store_cell(row, lane, v);
                    }
                }
            }
            ArithUop::LoadXReg { op } => {
                let row = self.resolve(&op, binding, counters);
                self.check_row_parity(row);
                self.xreg.copy_from_slice(&self.storage[row]);
            }
            ArithUop::ShiftLeft { masked } => {
                let msb = self.cfg.segment_bits() - 1;
                for lane in 0..self.lanes {
                    if masked && !self.mask[lane] {
                        continue;
                    }
                    let out = (self.shifter[lane] >> msb) & 1 == 1;
                    self.shifter[lane] =
                        ((self.shifter[lane] << 1) | u32::from(self.spare[lane])) & self.seg_mask;
                    self.spare[lane] = out;
                }
            }
            ArithUop::ShiftRight { masked } => {
                let msb = self.cfg.segment_bits() - 1;
                for lane in 0..self.lanes {
                    if masked && !self.mask[lane] {
                        continue;
                    }
                    let out = self.shifter[lane] & 1 == 1;
                    self.shifter[lane] =
                        (self.shifter[lane] >> 1) | (u32::from(self.spare[lane]) << msb);
                    self.spare[lane] = out;
                }
            }
            ArithUop::RotateLeft { masked } => {
                let msb = self.cfg.segment_bits() - 1;
                for lane in 0..self.lanes {
                    if masked && !self.mask[lane] {
                        continue;
                    }
                    let out = (self.shifter[lane] >> msb) & 1;
                    self.shifter[lane] = ((self.shifter[lane] << 1) | out) & self.seg_mask;
                }
            }
            ArithUop::RotateRight { masked } => {
                let msb = self.cfg.segment_bits() - 1;
                for lane in 0..self.lanes {
                    if masked && !self.mask[lane] {
                        continue;
                    }
                    let out = self.shifter[lane] & 1;
                    self.shifter[lane] = (self.shifter[lane] >> 1) | (out << msb);
                }
            }
            ArithUop::MaskShift => {
                for lane in 0..self.lanes {
                    self.xreg[lane] >>= 1;
                }
            }
            ArithUop::SetMask { src, invert } => {
                let msb = self.cfg.segment_bits() - 1;
                for lane in 0..self.lanes {
                    let bit = match src {
                        MaskSrc::XRegLsb => self.xreg[lane] & 1 == 1,
                        MaskSrc::XRegMsb => (self.xreg[lane] >> msb) & 1 == 1,
                        MaskSrc::AddMsb => {
                            let sum = self.blc.sum.get(lane).copied().unwrap_or(0);
                            (sum >> msb) & 1 == 1
                        }
                        MaskSrc::Carry => self.carry[lane],
                        MaskSrc::AllOnes => true,
                    };
                    self.mask[lane] = bit != invert;
                }
            }
            ArithUop::SetCarry { value } => {
                self.carry.iter_mut().for_each(|c| *c = value);
            }
            ArithUop::ClearSpare => {
                self.spare.iter_mut().for_each(|s| *s = false);
            }
        }
    }

    fn do_blc(&mut self, ra: usize, rb: usize, carry_in: CarryIn) {
        self.check_row_parity(ra);
        self.check_row_parity(rb);
        let lanes = self.lanes;
        let mut latch = BlcLatch {
            and: Vec::with_capacity(lanes),
            nand: Vec::with_capacity(lanes),
            or: Vec::with_capacity(lanes),
            nor: Vec::with_capacity(lanes),
            xor: Vec::with_capacity(lanes),
            xnor: Vec::with_capacity(lanes),
            sum: Vec::with_capacity(lanes),
        };
        for lane in 0..lanes {
            let mut a = self.storage[ra][lane];
            let mut b = self.storage[rb][lane];
            if let Some(f) = &mut self.fault {
                // Sense-amp glitches corrupt the operands *before* the
                // logic layers latch them.
                a = f.inj.corrupt_sense(ra as u32, lane as u32, a);
                b = f.inj.corrupt_sense(rb as u32, lane as u32, b);
            }
            let and = a & b;
            let or = a | b;
            let nand = !and & self.seg_mask;
            let nor = !or & self.seg_mask;
            // XOR/XNOR logic layer: derived from nand and or (§III).
            let xor = nand & or;
            let xnor = !xor & self.seg_mask;
            let cin = match carry_in {
                CarryIn::Stored => u32::from(self.carry[lane]),
                CarryIn::Zero => 0,
                CarryIn::One => 1,
            };
            // Manchester carry chain over the n-bit segment.
            let wide = u64::from(a) + u64::from(b) + u64::from(cin);
            let sum = (wide as u32) & self.seg_mask;
            let cout = wide >> self.cfg.segment_bits() != 0;
            self.carry[lane] = cout;
            latch.and.push(and);
            latch.nand.push(nand);
            latch.or.push(or);
            latch.nor.push(nor);
            latch.xor.push(xor);
            latch.xnor.push(xnor);
            latch.sum.push(sum);
        }
        self.blc = latch;
    }

    fn compute_value(&self, src: ComputeSrc, lane: usize) -> u32 {
        let pick = |v: &Vec<u32>| v.get(lane).copied().unwrap_or(0);
        match src {
            ComputeSrc::And => pick(&self.blc.and),
            ComputeSrc::Nand => pick(&self.blc.nand),
            ComputeSrc::Or => pick(&self.blc.or),
            ComputeSrc::Nor => pick(&self.blc.nor),
            ComputeSrc::Xor => pick(&self.blc.xor),
            ComputeSrc::Xnor => pick(&self.blc.xnor),
            ComputeSrc::Add => pick(&self.blc.sum),
            ComputeSrc::Shift => self.shifter[lane],
            ComputeSrc::Mask => u32::from(self.mask[lane]),
        }
    }
}
