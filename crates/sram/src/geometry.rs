//! Physical array geometry and the element-layout model (paper §II,
//! Fig 1).
//!
//! The layout model answers the question Fig 1 illustrates: given an
//! `R × C` SRAM holding `V` vector registers of `E`-bit elements at
//! parallelization factor `p`, how many in-situ ALUs (lanes) exist and
//! how well is the array utilized? Both the taxonomy spectrum (Fig 2)
//! and the engine's hardware vector lengths (Table III) derive from it.

use eve_common::{ConfigError, ConfigResult};

/// Default spare (redundant) row budget per array. Commodity SRAM
/// macros ship a handful of spare wordlines for post-manufacture
/// repair; EVE reuses the same redundancy at runtime to retire rows
/// that develop stuck-at faults (laser fuses become a remap latch).
pub const DEFAULT_SPARE_ROWS: u32 = 4;

/// Physical dimensions of one EVE SRAM array.
///
/// The paper's EVE SRAM is two banked 256×128 sub-arrays, i.e. a
/// 256-row × 256-column array in aggregate (§VI-B). On top of the
/// addressable `rows`, the macro carries `spare_rows` redundant
/// wordlines that sit outside the decoder's power-of-two space and
/// are only reachable through the remap latches — they contribute no
/// architectural capacity ([`SramGeometry::bits`] excludes them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SramGeometry {
    rows: u32,
    cols: u32,
    spare_rows: u32,
}

impl SramGeometry {
    /// The paper's production geometry: 256 × 256 (two banked 256×128
    /// sub-arrays), with the default spare-row repair budget.
    pub const PAPER: SramGeometry = SramGeometry {
        rows: 256,
        cols: 256,
        spare_rows: DEFAULT_SPARE_ROWS,
    };

    /// The didactic geometry of Fig 1: 16 × 16 (two spares).
    pub const FIG1: SramGeometry = SramGeometry {
        rows: 16,
        cols: 16,
        spare_rows: 2,
    };

    /// Creates a geometry with the default spare-row budget.
    ///
    /// # Errors
    ///
    /// Returns an error if either dimension is zero or not a power of
    /// two (decoders address power-of-two row counts).
    pub fn new(rows: u32, cols: u32) -> ConfigResult<Self> {
        Self::with_spares(rows, cols, DEFAULT_SPARE_ROWS.min(rows / 2))
    }

    /// Creates a geometry with an explicit spare-row budget.
    ///
    /// # Errors
    ///
    /// Returns an error if either dimension is zero or not a power of
    /// two, or if the spare budget exceeds half the addressable rows
    /// (a macro that spares more than it addresses is a config bug,
    /// not a repair strategy).
    pub fn with_spares(rows: u32, cols: u32, spare_rows: u32) -> ConfigResult<Self> {
        if rows == 0 || cols == 0 || !rows.is_power_of_two() || !cols.is_power_of_two() {
            return Err(ConfigError::new(format!(
                "array geometry {rows}x{cols} must be power-of-two sized"
            )));
        }
        if spare_rows > rows / 2 {
            return Err(ConfigError::new(format!(
                "{spare_rows} spare rows exceed half of {rows} addressable rows"
            )));
        }
        Ok(Self {
            rows,
            cols,
            spare_rows,
        })
    }

    /// Number of addressable rows (wordlines).
    #[must_use]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns (bitlines).
    #[must_use]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Redundant rows available for remapping faulty wordlines.
    #[must_use]
    pub fn spare_rows(&self) -> u32 {
        self.spare_rows
    }

    /// Physical wordlines fabricated: addressable plus spare.
    #[must_use]
    pub fn physical_rows(&self) -> u32 {
        self.rows + self.spare_rows
    }

    /// Total *architectural* bit capacity (spares excluded).
    #[must_use]
    pub fn bits(&self) -> u64 {
        u64::from(self.rows) * u64::from(self.cols)
    }
}

/// Element-layout model for one S-CIM array (§II).
///
/// # Examples
///
/// Reproduces the §II geometry: a 256×256 array with 32 registers of
/// 32-bit elements keeps 64 lanes through `p ≤ 4` (capacity-bound),
/// then halves with every doubling of `p` (row-underutilization):
///
/// ```
/// use eve_sram::{LayoutModel, SramGeometry};
/// let lanes: Vec<u32> = [1, 2, 4, 8, 16, 32]
///     .iter()
///     .map(|&p| LayoutModel::new(SramGeometry::PAPER, 32, 32, p).unwrap().lanes())
///     .collect();
/// assert_eq!(lanes, [64, 64, 64, 32, 16, 8]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutModel {
    geometry: SramGeometry,
    element_bits: u32,
    vregs: u32,
    factor: u32,
}

impl LayoutModel {
    /// Builds a layout for `vregs` registers of `element_bits`-bit
    /// elements at parallelization factor `factor`.
    ///
    /// # Errors
    ///
    /// Returns an error if `factor` does not divide `element_bits`, if
    /// either is zero, or if `vregs` is zero.
    pub fn new(
        geometry: SramGeometry,
        element_bits: u32,
        vregs: u32,
        factor: u32,
    ) -> ConfigResult<Self> {
        if factor == 0 || element_bits == 0 || !element_bits.is_multiple_of(factor) {
            return Err(ConfigError::new(format!(
                "factor {factor} must divide element width {element_bits}"
            )));
        }
        if vregs == 0 {
            return Err(ConfigError::new("vector register count must be nonzero"));
        }
        if factor > geometry.cols() {
            return Err(ConfigError::new(format!(
                "factor {factor} wider than the array ({} columns)",
                geometry.cols()
            )));
        }
        Ok(Self {
            geometry,
            element_bits,
            vregs,
            factor,
        })
    }

    /// The array geometry.
    #[must_use]
    pub fn geometry(&self) -> SramGeometry {
        self.geometry
    }

    /// Parallelization factor `p` (segment width in bits).
    #[must_use]
    pub fn factor(&self) -> u32 {
        self.factor
    }

    /// Segments per element: `E / p`.
    #[must_use]
    pub fn segments(&self) -> u32 {
        self.element_bits / self.factor
    }

    /// Column groups available: `C / p` — the ALU count before any
    /// capacity limit applies.
    #[must_use]
    pub fn column_groups(&self) -> u32 {
        self.geometry.cols() / self.factor
    }

    /// Register-element slots that fit vertically in one column group:
    /// `floor(R / segments)`.
    #[must_use]
    pub fn slots_per_group(&self) -> u32 {
        self.geometry.rows() / self.segments()
    }

    /// Number of in-situ ALUs (lanes): one per column group while the
    /// group can hold all `V` registers; otherwise columns are
    /// repurposed for register storage and the lane count drops to the
    /// capacity bound `R·C / (V·E)` (§II "Element Layout & Available
    /// In-Situ ALUs").
    #[must_use]
    pub fn lanes(&self) -> u32 {
        let groups = self.column_groups();
        if self.slots_per_group() >= self.vregs {
            groups
        } else {
            let capacity =
                self.geometry.bits() / (u64::from(self.vregs) * u64::from(self.element_bits));
            capacity.min(u64::from(groups)) as u32
        }
    }

    /// Whether rows are left idle (`p` past the balanced point): the
    /// registers of a lane do not fill the group's rows.
    #[must_use]
    pub fn row_underutilized(&self) -> bool {
        self.slots_per_group() > self.vregs
    }

    /// Whether columns are repurposed for storage (`p` before the
    /// balanced point): not every column group computes.
    #[must_use]
    pub fn column_underutilized(&self) -> bool {
        self.slots_per_group() < self.vregs
    }

    /// Fraction of the array's bits holding live register state.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let used = u64::from(self.lanes()) * u64::from(self.vregs) * u64::from(self.element_bits);
        used as f64 / self.geometry.bits() as f64
    }

    /// The balanced parallelization factor for this array: the `p` at
    /// which `V` registers exactly fill a column group's rows
    /// (`p = E·V / R`), clamped to a valid factor.
    #[must_use]
    pub fn balanced_factor(geometry: SramGeometry, element_bits: u32, vregs: u32) -> u32 {
        let ideal =
            (u64::from(element_bits) * u64::from(vregs) / u64::from(geometry.rows())).max(1) as u32;
        ideal.next_power_of_two().min(element_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_validation() {
        assert!(SramGeometry::new(256, 256).is_ok());
        assert!(SramGeometry::new(0, 256).is_err());
        assert!(SramGeometry::new(100, 256).is_err());
        assert_eq!(SramGeometry::PAPER.bits(), 65536);
    }

    #[test]
    fn spare_rows_sit_outside_architectural_capacity() {
        let g = SramGeometry::with_spares(256, 256, 8).unwrap();
        assert_eq!(g.spare_rows(), 8);
        assert_eq!(g.physical_rows(), 264);
        // Spares never count toward capacity: same bits as no-spare.
        assert_eq!(
            g.bits(),
            SramGeometry::with_spares(256, 256, 0).unwrap().bits()
        );
        // An absurd spare budget is a config error, not a bigger array.
        assert!(SramGeometry::with_spares(16, 16, 9).is_err());
        // The defaults carry a repair budget.
        assert_eq!(SramGeometry::PAPER.spare_rows(), DEFAULT_SPARE_ROWS);
        assert_eq!(SramGeometry::FIG1.spare_rows(), 2);
        assert_eq!(SramGeometry::new(256, 256).unwrap().spare_rows(), 4);
    }

    #[test]
    fn fig1_single_register_half_utilized() {
        // Fig 1: 16x16, 8-bit elements, one vreg, p=1: 16 elements,
        // half the SRAM occupied.
        let m = LayoutModel::new(SramGeometry::FIG1, 8, 1, 1).unwrap();
        assert_eq!(m.lanes(), 16);
        assert!((m.utilization() - 0.5).abs() < 1e-9);
        assert!(m.row_underutilized());
    }

    #[test]
    fn fig1_two_registers_balanced() {
        let m = LayoutModel::new(SramGeometry::FIG1, 8, 2, 1).unwrap();
        assert_eq!(m.lanes(), 16);
        assert!((m.utilization() - 1.0).abs() < 1e-9);
        assert!(!m.row_underutilized());
        assert!(!m.column_underutilized());
    }

    #[test]
    fn fig1_four_registers_columns_repurposed() {
        let m = LayoutModel::new(SramGeometry::FIG1, 8, 4, 1).unwrap();
        assert_eq!(m.lanes(), 8);
        assert!(m.column_underutilized());
    }

    #[test]
    fn paper_geometry_lane_progression() {
        // Matches Table III hardware vector lengths / 32 arrays:
        // EVE-{1,2,4}: 64 lanes, EVE-8: 32, EVE-16: 16, EVE-32: 8.
        let lanes: Vec<u32> = [1u32, 2, 4, 8, 16, 32]
            .iter()
            .map(|&p| {
                LayoutModel::new(SramGeometry::PAPER, 32, 32, p)
                    .unwrap()
                    .lanes()
            })
            .collect();
        assert_eq!(lanes, [64, 64, 64, 32, 16, 8]);
    }

    #[test]
    fn balanced_factor_for_paper_geometry() {
        // 32-bit x 32 vregs on 256 rows balances at p = 4 (§II:
        // "throughput peaks when the parallelization factor reaches
        // four").
        assert_eq!(LayoutModel::balanced_factor(SramGeometry::PAPER, 32, 32), 4);
    }

    #[test]
    fn utilization_peaks_at_balance() {
        let utils: Vec<f64> = [1u32, 2, 4, 8, 16, 32]
            .iter()
            .map(|&p| {
                LayoutModel::new(SramGeometry::PAPER, 32, 32, p)
                    .unwrap()
                    .utilization()
            })
            .collect();
        let peak = utils.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((utils[2] - peak).abs() < 1e-9, "{utils:?}"); // p=4
    }

    #[test]
    fn invalid_layouts_rejected() {
        assert!(LayoutModel::new(SramGeometry::PAPER, 32, 32, 3).is_err());
        assert!(LayoutModel::new(SramGeometry::PAPER, 32, 0, 1).is_err());
        assert!(LayoutModel::new(SramGeometry::PAPER, 0, 32, 1).is_err());
        assert!(LayoutModel::new(SramGeometry::FIG1, 8, 1, 32).is_err());
    }
}
