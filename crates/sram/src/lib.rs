//! Bit-accurate model of the EVE compute-in-memory SRAM (paper §III).
//!
//! EVE replaces the SRAM arrays in half the ways of a private L2 cache
//! with *EVE SRAM*: a 6T array whose sense amplifiers can operate
//! single-ended while two wordlines are asserted at once, computing the
//! bit-wise `and`/`nand`/`or`/`nor` of two rows in a single access
//! (bit-line compute, after Jeloka et al.). A stack of peripheral
//! circuit layers turns that primitive into a full vector unit:
//!
//! | layer | role |
//! |-------|------|
//! | bus logic | amplifies and selects the value written back |
//! | XOR/XNOR logic | derives `xor`/`xnor` from `nand` and `or` |
//! | add logic | *n*-bit Manchester carry chain per column group |
//! | XRegister | shift-right register; streams multiplier/sign bits |
//! | mask logic | per-column latch gating conditional writebacks |
//! | constant shifter | one-bit left/right shifts of a loaded segment |
//! | spare shifter | carries bits (and the add carry) across segments |
//!
//! [`EveArray`] implements all of this at bit granularity and executes
//! the μprograms from [`eve_uop`], so every macro-operation the engine
//! issues can be checked against plain Rust integer semantics — the
//! verification role the paper's SPICE/schematic simulations played.
//!
//! # Examples
//!
//! ```
//! use eve_sram::{Binding, EveArray};
//! use eve_uop::{HybridConfig, MacroOpKind, ProgramLibrary};
//!
//! let cfg = HybridConfig::new(8)?;
//! let mut array = EveArray::new(cfg, 4); // 4 lanes
//! array.write_element(1, 0, 1000);
//! array.write_element(2, 0, 234);
//! let prog = ProgramLibrary::new(cfg).program(MacroOpKind::Add);
//! array.execute(&prog, &Binding::new(3, 1, 2));
//! assert_eq!(array.read_element(3, 0), 1234);
//! # Ok::<(), eve_common::ConfigError>(())
//! ```

pub mod array;
pub mod ecc;
pub mod fault;
pub mod geometry;
#[cfg(any(test, feature = "scalar-oracle"))]
pub mod scalar;

pub use array::{Binding, DetectionMode, EveArray, ScrubStats};
pub use ecc::{SecdedCode, SecdedVerdict};
pub use fault::{Fault, FaultConfig, FaultInjector, FaultKind, FaultLayer, FaultStats};
pub use geometry::{LayoutModel, SramGeometry, DEFAULT_SPARE_ROWS};
#[cfg(any(test, feature = "scalar-oracle"))]
pub use scalar::ScalarArray;
