//! Deterministic, seed-driven fault injection for the EVE SRAM.
//!
//! EVE computes inside live L2 ways, so a flipped cell or a glitched
//! sense amplifier during a bit-line compute silently corrupts
//! architectural vector state. This module models that failure class
//! at the two layers where §III's circuits actually touch bits:
//!
//! * **Bit-line compute (sense) layer** — the single-ended sense
//!   amplifiers mis-read an operand bit while two wordlines are
//!   asserted. The corrupted operand flows through the logic/add
//!   layers and is written back with *self-consistent* parity, so the
//!   array cannot detect it: a potential silent data corruption.
//! * **Writeback layer** — the bus-logic drivers (or the cell itself)
//!   corrupt a bit *after* the row's parity was generated, so the next
//!   μprogram read of that row sees a parity mismatch and raises an
//!   alarm.
//!
//! Three fault populations are supported, all drawn from one
//! [`SplitMix64`] stream so a `(seed, execution)` pair reproduces the
//! exact same corruptions on every run and every machine:
//!
//! * **Stuck-at cells** — sampled per cell at arm time with
//!   probability `stuck_rate`; the cell forces one bit to 0 or 1 on
//!   every write, forever (manufacturing defects, worn cells).
//! * **Random transients** — each writeback event (per lane) flips
//!   one random bit with probability `transient_write_rate`; each
//!   bit-line-compute operand read likewise with
//!   `transient_sense_rate` (particle strikes, droop glitches).
//! * **Scripted faults** — explicit [`Fault`] records scoped to a
//!   row, lane, bit, and cycle window, for targeted experiments and
//!   unit tests. Scripted transients fire at most once.

use eve_common::SplitMix64;
use std::collections::HashMap;

/// The circuit layer a scripted transient strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultLayer {
    /// Operand corruption during a bit-line compute — undetectable by
    /// parity (the corrupt result is written back self-consistently).
    Sense,
    /// Corruption between parity generation and the cell latch —
    /// detectable on the next parity-checked read of the row.
    Writeback,
}

/// What a scripted fault does to its target bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The cell reads/writes 0 at the target bit on every write.
    StuckAt0,
    /// The cell reads/writes 1 at the target bit on every write.
    StuckAt1,
    /// A one-shot bit flip at `layer`, armed inside the cycle window.
    Transient(FaultLayer),
}

/// One scripted fault, scoped to a cell and a cycle window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// What happens to the bit.
    pub kind: FaultKind,
    /// Target logical row.
    pub row: u32,
    /// Target lane (column group).
    pub lane: u32,
    /// Bit position within the lane's `n`-bit segment.
    pub bit: u8,
    /// First μprogram cycle (inclusive) the fault is live.
    pub from_cycle: u64,
    /// Last μprogram cycle (inclusive) the fault is live.
    pub until_cycle: u64,
}

impl Fault {
    /// A permanently stuck cell (live on every cycle).
    #[must_use]
    pub fn stuck_at(row: u32, lane: u32, bit: u8, value: bool) -> Self {
        Self {
            kind: if value {
                FaultKind::StuckAt1
            } else {
                FaultKind::StuckAt0
            },
            row,
            lane,
            bit,
            from_cycle: 0,
            until_cycle: u64::MAX,
        }
    }

    /// A one-shot transient at `layer`, live in `[from, until]`.
    #[must_use]
    pub fn transient(
        layer: FaultLayer,
        row: u32,
        lane: u32,
        bit: u8,
        from: u64,
        until: u64,
    ) -> Self {
        Self {
            kind: FaultKind::Transient(layer),
            row,
            lane,
            bit,
            from_cycle: from,
            until_cycle: until,
        }
    }
}

/// Rates and scripted faults describing one injection campaign point.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for all random draws.
    pub seed: u64,
    /// Per-cell probability of a stuck bit, sampled once at arm time.
    pub stuck_rate: f64,
    /// Per-writeback-event, per-lane probability of one flipped bit.
    pub transient_write_rate: f64,
    /// Per-bit-line-compute operand, per-lane probability of one
    /// flipped bit.
    pub transient_sense_rate: f64,
    /// Explicit scripted faults.
    pub scripted: Vec<Fault>,
}

impl FaultConfig {
    /// A configuration that injects nothing (the zero-fault control).
    #[must_use]
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            stuck_rate: 0.0,
            transient_write_rate: 0.0,
            transient_sense_rate: 0.0,
            scripted: Vec::new(),
        }
    }

    /// A uniform-rate configuration: `rate` for both transient layers
    /// and `rate / 10` for stuck cells (permanent faults are rarer
    /// than particle strikes).
    #[must_use]
    pub fn uniform(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            stuck_rate: rate / 10.0,
            transient_write_rate: rate,
            transient_sense_rate: rate,
            scripted: Vec::new(),
        }
    }

    /// A writeback-transient-only configuration: single-bit flips in
    /// the cell/latch path at `rate`, sense amps and cells healthy.
    /// This is the population SECDED corrects completely — the CI
    /// resilience gate's zero-SDC sweep uses it.
    #[must_use]
    pub fn write_transients(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            stuck_rate: 0.0,
            transient_write_rate: rate,
            transient_sense_rate: 0.0,
            scripted: Vec::new(),
        }
    }

    /// True when no fault source is armed.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.stuck_rate == 0.0
            && self.transient_write_rate == 0.0
            && self.transient_sense_rate == 0.0
            && self.scripted.is_empty()
    }
}

/// Counters describing what an injector actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Stuck cells sampled at arm time (plus scripted stuck-ats).
    pub stuck_cells: u64,
    /// Writes where a stuck cell forced a bit away from its intended
    /// value (writes matching the stuck value are *masked*).
    pub stuck_perturbed_writes: u64,
    /// Random bit flips applied at the writeback layer.
    pub write_flips: u64,
    /// Random bit flips applied at the sense (bit-line compute) layer.
    pub sense_flips: u64,
    /// Scripted transients that fired.
    pub scripted_fired: u64,
}

impl FaultStats {
    /// Total corruption events of any kind.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.stuck_perturbed_writes + self.write_flips + self.sense_flips + self.scripted_fired
    }
}

/// A deterministic fault injector bound to one [`EveArray`].
///
/// Create one from a [`FaultConfig`], attach it with
/// [`crate::EveArray::attach_injector`], and read the damage back via
/// [`FaultInjector::stats`] after execution.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: SplitMix64,
    /// `(row, lane)` → `(bit, stuck_value)` for sampled + scripted
    /// stuck cells.
    stuck: HashMap<(u32, u32), (u8, bool)>,
    /// Tracks which scripted transients already fired.
    fired: Vec<bool>,
    cycle: u64,
    seg_bits: u32,
    armed: bool,
    stats: FaultStats,
}

impl FaultInjector {
    /// An injector for `config`; call [`Self::arm`] (done by
    /// `attach_injector`) before use.
    #[must_use]
    pub fn new(config: FaultConfig) -> Self {
        let rng = SplitMix64::new(config.seed);
        let fired = vec![false; config.scripted.len()];
        Self {
            config,
            rng,
            stuck: HashMap::new(),
            fired,
            cycle: 0,
            seg_bits: 32,
            armed: false,
            stats: FaultStats::default(),
        }
    }

    /// Samples the stuck-cell population for an array of
    /// `rows × lanes` cells with `seg_bits`-bit segments. Idempotent.
    pub fn arm(&mut self, rows: u32, lanes: u32, seg_bits: u32) {
        if self.armed {
            return;
        }
        self.armed = true;
        self.seg_bits = seg_bits;
        if self.config.stuck_rate > 0.0 {
            // Row-major scan with one Bernoulli draw per cell: the
            // sampled population depends only on (seed, dimensions).
            for row in 0..rows {
                for lane in 0..lanes {
                    if self.rng.chance(self.config.stuck_rate) {
                        let bit = self.rng.below(u64::from(seg_bits)) as u8;
                        let value = self.rng.chance(0.5);
                        self.stuck.insert((row, lane), (bit, value));
                    }
                }
            }
        }
        for f in &self.config.scripted {
            match f.kind {
                FaultKind::StuckAt0 => {
                    self.stuck.insert((f.row, f.lane), (f.bit, false));
                }
                FaultKind::StuckAt1 => {
                    self.stuck.insert((f.row, f.lane), (f.bit, true));
                }
                FaultKind::Transient(_) => {}
            }
        }
        self.stats.stuck_cells = self.stuck.len() as u64;
    }

    /// Advances the μprogram cycle counter (one call per tuple).
    pub fn tick(&mut self) {
        self.cycle += 1;
    }

    /// The current μprogram cycle (for scripted windows).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The configuration this injector was built from.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// What the injector has done so far.
    #[must_use]
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Corrupts a value on its way into cell `(row, lane)` at the
    /// writeback layer. Parity for the row was already generated from
    /// the intended value, so any change here is detectable.
    #[must_use]
    pub fn corrupt_write(&mut self, row: u32, lane: u32, value: u32) -> u32 {
        let mut v = value;
        if self.config.transient_write_rate > 0.0
            && self.rng.chance(self.config.transient_write_rate)
        {
            v ^= 1 << self.rng.below(u64::from(self.seg_bits));
            self.stats.write_flips += 1;
        }
        v = self.apply_scripted(FaultLayer::Writeback, row, lane, v);
        if let Some(&(bit, stuck)) = self.stuck.get(&(row, lane)) {
            let forced = if stuck {
                v | (1 << bit)
            } else {
                v & !(1 << bit)
            };
            if forced != v {
                self.stats.stuck_perturbed_writes += 1;
            }
            v = forced;
        }
        v
    }

    /// Corrupts an operand read by the bit-line compute layer. The
    /// downstream result is written back with consistent parity, so
    /// these faults are silent at the array level.
    #[must_use]
    pub fn corrupt_sense(&mut self, row: u32, lane: u32, value: u32) -> u32 {
        let mut v = value;
        if self.config.transient_sense_rate > 0.0
            && self.rng.chance(self.config.transient_sense_rate)
        {
            v ^= 1 << self.rng.below(u64::from(self.seg_bits));
            self.stats.sense_flips += 1;
        }
        self.apply_scripted(FaultLayer::Sense, row, lane, v)
    }

    /// True when this injector can never corrupt anything.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.config.is_zero()
    }

    fn apply_scripted(&mut self, layer: FaultLayer, row: u32, lane: u32, value: u32) -> u32 {
        if self.config.scripted.is_empty() {
            return value;
        }
        let mut v = value;
        for (i, f) in self.config.scripted.iter().enumerate() {
            if self.fired[i]
                || f.kind != FaultKind::Transient(layer)
                || f.row != row
                || f.lane != lane
                || self.cycle < f.from_cycle
                || self.cycle > f.until_cycle
            {
                continue;
            }
            v ^= 1 << f.bit;
            self.fired[i] = true;
            self.stats.scripted_fired += 1;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed(config: FaultConfig) -> FaultInjector {
        let mut inj = FaultInjector::new(config);
        inj.arm(64, 8, 8);
        inj
    }

    #[test]
    fn zero_config_is_inert() {
        let mut inj = armed(FaultConfig::none(1));
        for row in 0..64 {
            for lane in 0..8 {
                assert_eq!(inj.corrupt_write(row, lane, 0xA5), 0xA5);
                assert_eq!(inj.corrupt_sense(row, lane, 0x5A), 0x5A);
            }
        }
        assert!(inj.is_inert());
        assert_eq!(inj.stats().total_events(), 0);
    }

    #[test]
    fn same_seed_same_corruptions() {
        let run = || {
            let mut inj = armed(FaultConfig::uniform(77, 0.05));
            let out: Vec<u32> = (0..2000)
                .map(|i| inj.corrupt_write(i % 64, i % 8, i.wrapping_mul(0x9E37)))
                .collect();
            (out, *inj.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = armed(FaultConfig::uniform(1, 0.05));
        let mut b = armed(FaultConfig::uniform(2, 0.05));
        let va: Vec<u32> = (0..2000).map(|i| a.corrupt_write(i % 64, 0, 0)).collect();
        let vb: Vec<u32> = (0..2000).map(|i| b.corrupt_write(i % 64, 0, 0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn stuck_cells_force_their_bit_on_every_write() {
        let mut cfg = FaultConfig::none(3);
        cfg.scripted.push(Fault::stuck_at(5, 2, 3, true));
        cfg.scripted.push(Fault::stuck_at(6, 1, 0, false));
        let mut inj = armed(cfg);
        assert_eq!(inj.corrupt_write(5, 2, 0x00), 0x08);
        assert_eq!(inj.corrupt_write(5, 2, 0x08), 0x08); // masked: no change
        assert_eq!(inj.corrupt_write(6, 1, 0xFF), 0xFE);
        assert_eq!(inj.corrupt_write(7, 7, 0xAA), 0xAA); // other cells clean
        assert_eq!(inj.stats().stuck_perturbed_writes, 2);
        assert_eq!(inj.stats().stuck_cells, 2);
    }

    #[test]
    fn scripted_transient_fires_once_inside_its_window() {
        let mut cfg = FaultConfig::none(4);
        cfg.scripted
            .push(Fault::transient(FaultLayer::Writeback, 9, 0, 4, 10, 20));
        let mut inj = armed(cfg);
        // Before the window: clean.
        assert_eq!(inj.corrupt_write(9, 0, 0), 0);
        for _ in 0..15 {
            inj.tick();
        }
        // Inside the window: flips bit 4, exactly once.
        assert_eq!(inj.corrupt_write(9, 0, 0), 0x10);
        assert_eq!(inj.corrupt_write(9, 0, 0), 0);
        assert_eq!(inj.stats().scripted_fired, 1);
    }

    #[test]
    fn sense_and_writeback_layers_are_independent() {
        let mut cfg = FaultConfig::none(5);
        cfg.scripted
            .push(Fault::transient(FaultLayer::Sense, 3, 1, 0, 0, u64::MAX));
        let mut inj = armed(cfg);
        // A sense-layer fault never perturbs writes.
        assert_eq!(inj.corrupt_write(3, 1, 6), 6);
        assert_eq!(inj.corrupt_sense(3, 1, 6), 7);
    }

    #[test]
    fn stuck_population_scales_with_rate() {
        let small = armed(FaultConfig {
            stuck_rate: 0.01,
            ..FaultConfig::none(9)
        });
        let large = armed(FaultConfig {
            stuck_rate: 0.2,
            ..FaultConfig::none(9)
        });
        assert!(small.stats().stuck_cells < large.stats().stuck_cells);
        assert!(large.stats().stuck_cells > 0);
    }
}
