//! SECDED error-correcting code over one lane's segment value.
//!
//! Real L2 SRAM ships with single-error-correct / double-error-detect
//! ECC (a Hamming(72,64)-style code plus an overall parity bit), and
//! EVE repurposes live L2 ways — so the fault model grows the same
//! machinery. Each lane's `p`-bit segment is protected independently:
//! a Hamming code over the `p` data bits plus one overall parity bit,
//! i.e. Hamming(39,32)+P at `p = 32`, scaling down with the factor.
//!
//! The table-driven layout here is deliberately *plane-oriented*: the
//! bitsliced array stores one u64 plane per data bit and per check
//! bit, and [`SecdedCode::group_mask`] tells the word-parallel checker
//! exactly which data planes to XOR together to reproduce a check
//! plane. The per-lane [`SecdedCode::decode`] path only runs for lanes
//! whose syndrome word came back nonzero — the fast path never leaves
//! word-parallel algebra.
//!
//! # Examples
//!
//! ```
//! use eve_sram::{SecdedCode, SecdedVerdict};
//!
//! let code = SecdedCode::new(8);
//! let check = code.encode(0xA5);
//! assert_eq!(code.decode(0xA5, check), SecdedVerdict::Clean);
//! // Any single flipped data bit is corrected in place...
//! assert_eq!(code.decode(0xA5 ^ 0x10, check), SecdedVerdict::CorrectedData(4));
//! // ...and any double flip is flagged uncorrectable.
//! assert_eq!(
//!     code.decode(0xA5 ^ 0x11, check),
//!     SecdedVerdict::Uncorrectable
//! );
//! ```

/// Outcome of decoding one lane's (data, check) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub enum SecdedVerdict {
    /// Syndrome and overall parity both clean.
    Clean,
    /// Single-bit error in data bit `i`; flip it to repair.
    CorrectedData(u32),
    /// Single-bit error in check bit `j` (including the overall parity
    /// bit at index `r`); the data is intact.
    CorrectedCheck(u32),
    /// Double-bit (or worse, aliased) error: detectable, not
    /// correctable. Escalate.
    Uncorrectable,
}

/// A SECDED code for `k`-bit data words, `1 ≤ k ≤ 32`.
///
/// Codeword positions are numbered `1..=k+r` in the classic Hamming
/// arrangement: power-of-two positions hold check bits, the rest hold
/// data bits in ascending order. Check bit `j` covers every position
/// whose index has bit `j` set; an extra overall parity bit (stored at
/// check index `r`) covers the whole codeword and turns SEC into
/// SECDED.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecdedCode {
    k: u32,
    r: u32,
    /// `data_pos[i]` = Hamming position of data bit `i`.
    data_pos: [u32; 32],
    /// `groups[j]` = mask over data-bit indices covered by check `j`.
    groups: [u32; 6],
}

impl SecdedCode {
    /// Builds the code for `k` data bits.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds 32 (segment widths are the
    /// hybrid factors 1..=32).
    #[must_use]
    pub fn new(k: u32) -> Self {
        assert!((1..=32).contains(&k), "SECDED data width {k} out of range");
        let mut r = 1u32;
        while (1u32 << r) < k + r + 1 {
            r += 1;
        }
        let mut data_pos = [0u32; 32];
        let mut groups = [0u32; 6];
        let mut pos = 1u32;
        for (i, slot) in data_pos.iter_mut().take(k as usize).enumerate() {
            while pos.is_power_of_two() {
                pos += 1;
            }
            *slot = pos;
            for (j, g) in groups.iter_mut().take(r as usize).enumerate() {
                if pos & (1 << j) != 0 {
                    *g |= 1 << i;
                }
            }
            pos += 1;
        }
        Self {
            k,
            r,
            data_pos,
            groups,
        }
    }

    /// Data width `k`.
    #[must_use]
    pub fn data_bits(&self) -> u32 {
        self.k
    }

    /// Hamming check-bit count `r` (excluding the overall parity bit).
    #[must_use]
    pub fn hamming_bits(&self) -> u32 {
        self.r
    }

    /// Total stored check bits: `r` Hamming bits plus the overall
    /// parity bit — the number of check *planes* the bitsliced array
    /// keeps per row.
    #[must_use]
    pub fn check_bits(&self) -> u32 {
        self.r + 1
    }

    /// Mask over data-bit indices whose planes XOR to check plane `j`.
    /// This is the word-parallel checker's recipe: syndrome plane `j`
    /// is the XOR of these data planes against the stored check plane.
    #[must_use]
    pub fn group_mask(&self, j: u32) -> u32 {
        self.groups[j as usize]
    }

    /// Encodes `data` into its check bits: Hamming bits in `0..r`,
    /// overall parity (over data *and* Hamming bits) in bit `r`.
    #[must_use]
    pub fn encode(&self, data: u32) -> u32 {
        let mut check = 0u32;
        for j in 0..self.r {
            check |= parity32(data & self.groups[j as usize]) << j;
        }
        let overall = parity32(data) ^ parity32(check);
        check | (overall << self.r)
    }

    /// Decodes a received (data, check) pair.
    pub fn decode(&self, data: u32, check: u32) -> SecdedVerdict {
        let mut syndrome = 0u32;
        for j in 0..self.r {
            let recomputed = parity32(data & self.groups[j as usize]);
            syndrome |= (recomputed ^ ((check >> j) & 1)) << j;
        }
        let hamming = check & ((1 << self.r) - 1);
        let overall = parity32(data) ^ parity32(hamming) ^ ((check >> self.r) & 1);
        match (syndrome, overall) {
            (0, 0) => SecdedVerdict::Clean,
            // Odd parity, zero syndrome: the overall parity bit itself
            // flipped.
            (0, _) => SecdedVerdict::CorrectedCheck(self.r),
            // Even parity with a nonzero syndrome: two flips.
            (_, 0) => SecdedVerdict::Uncorrectable,
            (s, _) => {
                if s.is_power_of_two() && s <= self.k + self.r {
                    return SecdedVerdict::CorrectedCheck(s.trailing_zeros());
                }
                match self.position_to_data(s) {
                    Some(i) => SecdedVerdict::CorrectedData(i),
                    // Syndrome points past the codeword: aliasing from
                    // a multi-bit error.
                    None => SecdedVerdict::Uncorrectable,
                }
            }
        }
    }

    /// Decodes and repairs `data`/`check` in place, returning the
    /// verdict. `Uncorrectable` leaves both untouched.
    #[must_use = "an Uncorrectable verdict means the word is still damaged"]
    pub fn correct(&self, data: &mut u32, check: &mut u32) -> SecdedVerdict {
        let v = self.decode(*data, *check);
        match v {
            SecdedVerdict::CorrectedData(i) => *data ^= 1 << i,
            SecdedVerdict::CorrectedCheck(j) => *check ^= 1 << j,
            SecdedVerdict::Clean | SecdedVerdict::Uncorrectable => {}
        }
        v
    }

    fn position_to_data(&self, pos: u32) -> Option<u32> {
        self.data_pos[..self.k as usize]
            .iter()
            .position(|&p| p == pos)
            .map(|i| i as u32)
    }
}

#[inline]
fn parity32(x: u32) -> u32 {
    x.count_ones() & 1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every hybrid factor the engine can configure.
    const WIDTHS: [u32; 6] = [1, 2, 4, 8, 16, 32];

    #[test]
    fn check_bit_counts_match_hamming_bound() {
        // (k, r): Hamming(4,1), (6,2)... Hamming(39,32) has r = 6.
        let want = [(1, 2), (2, 3), (4, 3), (8, 4), (16, 5), (32, 6)];
        for (k, r) in want {
            let code = SecdedCode::new(k);
            assert_eq!(code.hamming_bits(), r, "k={k}");
            assert_eq!(code.check_bits(), r + 1, "k={k}");
        }
    }

    #[test]
    fn clean_words_decode_clean() {
        for &k in &WIDTHS {
            let code = SecdedCode::new(k);
            let mask = (1u64 << k) - 1;
            for sample in 0..256u64 {
                let data = (sample.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask) as u32;
                assert_eq!(code.decode(data, code.encode(data)), SecdedVerdict::Clean);
            }
        }
    }

    #[test]
    fn every_single_data_flip_is_corrected() {
        for &k in &WIDTHS {
            let code = SecdedCode::new(k);
            let mask = ((1u64 << k) - 1) as u32;
            for sample in 0..64u64 {
                let data = (sample.wrapping_mul(0x2545_F491_4F6C_DD1D) as u32) & mask;
                let check = code.encode(data);
                for bit in 0..k {
                    let mut d = data ^ (1 << bit);
                    let mut c = check;
                    assert_eq!(
                        code.correct(&mut d, &mut c),
                        SecdedVerdict::CorrectedData(bit),
                        "k={k} data={data:#x} bit={bit}"
                    );
                    assert_eq!((d, c), (data, check));
                }
            }
        }
    }

    #[test]
    fn every_single_check_flip_is_corrected() {
        for &k in &WIDTHS {
            let code = SecdedCode::new(k);
            let data = 0x5A5A_5A5A & (((1u64 << k) - 1) as u32);
            let check = code.encode(data);
            for j in 0..code.check_bits() {
                let mut d = data;
                let mut c = check ^ (1 << j);
                assert_eq!(
                    code.correct(&mut d, &mut c),
                    SecdedVerdict::CorrectedCheck(j),
                    "k={k} j={j}"
                );
                assert_eq!((d, c), (data, check));
            }
        }
    }

    #[test]
    fn every_double_flip_is_uncorrectable() {
        for &k in &WIDTHS {
            let code = SecdedCode::new(k);
            let n = k + code.check_bits();
            let data = 0x0F0F_0F0F & (((1u64 << k) - 1) as u32);
            let check = code.encode(data);
            for a in 0..n {
                for b in (a + 1)..n {
                    let flip = |bit: u32, d: &mut u32, c: &mut u32| {
                        if bit < k {
                            *d ^= 1 << bit;
                        } else {
                            *c ^= 1 << (bit - k);
                        }
                    };
                    let (mut d, mut c) = (data, check);
                    flip(a, &mut d, &mut c);
                    flip(b, &mut d, &mut c);
                    assert_eq!(
                        code.decode(d, c),
                        SecdedVerdict::Uncorrectable,
                        "k={k} flips=({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn group_masks_reproduce_encode() {
        // The word-parallel checker rebuilds check plane j by XORing
        // the group's data planes; per-lane that collapses to the
        // parity of (data & group_mask). The two recipes must agree.
        for &k in &WIDTHS {
            let code = SecdedCode::new(k);
            let mask = ((1u64 << k) - 1) as u32;
            for sample in 0..128u64 {
                let data = (sample.wrapping_mul(0x9E37_79B9) as u32) & mask;
                let check = code.encode(data);
                for j in 0..code.hamming_bits() {
                    assert_eq!(
                        parity32(data & code.group_mask(j)),
                        (check >> j) & 1,
                        "k={k} j={j}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_rejected() {
        let _ = SecdedCode::new(0);
    }
}
