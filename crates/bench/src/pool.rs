//! A dependency-free scoped-thread job pool for the sweep binaries.
//!
//! The experiment sweeps (`fig6`, `fig7`, ablations, `fault_campaign`)
//! are embarrassingly parallel: independent simulations whose results
//! are merged in a fixed order. [`run_jobs`] fans a job list out across
//! worker threads with a shared atomic cursor and returns results
//! **indexed by job**, so output is byte-identical to a serial run —
//! any seed derivation must happen *before* the fan-out (see
//! `eve_sim::fault::campaign_jobs`), never inside workers.
//!
//! Worker count comes from [`threads`]: the `EVE_BENCH_THREADS`
//! environment variable when set (`1` forces the serial path — CI uses
//! this to cross-check determinism), otherwise the machine's available
//! parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker threads to use: `EVE_BENCH_THREADS` if set to a positive
/// integer, else the machine's available parallelism.
#[must_use]
pub fn threads() -> usize {
    if let Ok(v) = std::env::var("EVE_BENCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `jobs` invocations of `f` (by job index) and returns the
/// results in index order.
///
/// With one worker (or one job) this degenerates to a plain serial
/// loop on the calling thread; otherwise scoped workers pull indices
/// from an atomic cursor. Result order — and therefore any JSON
/// rendered from it — is independent of scheduling.
///
/// # Panics
///
/// Propagates a panic from any job.
pub fn run_jobs<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads().min(jobs);
    if workers <= 1 {
        return (0..jobs).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("job slot lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("job slot lock")
                .expect("every job index was claimed and completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_job_order() {
        let out = run_jobs(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<u32> = run_jobs(0, |_| unreachable!("no jobs to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_still_merges_deterministically() {
        // Jobs with wildly different costs must not affect order.
        let out = run_jobs(16, |i| {
            if i % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }
}
