//! A dependency-free scoped-thread job pool for the sweep binaries.
//!
//! The experiment sweeps (`fig6`, `fig7`, ablations, `fault_campaign`)
//! are embarrassingly parallel: independent simulations whose results
//! are merged in a fixed order. [`run_jobs`] fans a job list out across
//! worker threads with a shared atomic cursor and returns results
//! **indexed by job**, so output is byte-identical to a serial run —
//! any seed derivation must happen *before* the fan-out (see
//! `eve_sim::fault::campaign_jobs`), never inside workers.
//!
//! Worker count comes from [`threads`]: the `EVE_BENCH_THREADS`
//! environment variable when set (`1` forces the serial path — CI uses
//! this to cross-check determinism), otherwise the machine's available
//! parallelism.
//!
//! Two entry points with different failure contracts:
//!
//! * [`run_jobs`] — a panicking job no longer kills its worker
//!   mid-queue (the historical bug: the unwind took the worker down
//!   and left the remaining indices unclaimed); every job now runs to
//!   completion and the first panic is re-raised only after the queue
//!   fully drains.
//! * [`try_run_jobs`] — full isolation for campaign grids: a panic
//!   becomes a [`JobError::Panicked`] result for that cell, and when
//!   `EVE_BENCH_TIMEOUT` (seconds) is set, a hung job is abandoned as
//!   [`JobError::TimedOut`] while the pool keeps draining.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Worker threads to use: `EVE_BENCH_THREADS` if set to a positive
/// integer, else the machine's available parallelism.
#[must_use]
pub fn threads() -> usize {
    if let Ok(v) = std::env::var("EVE_BENCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Per-job watchdog budget: `EVE_BENCH_TIMEOUT` in (positive whole)
/// seconds, or `None` when unset or unparsable.
#[must_use]
pub fn timeout() -> Option<Duration> {
    let v = std::env::var("EVE_BENCH_TIMEOUT").ok()?;
    let secs = v.trim().parse::<u64>().ok().filter(|&s| s > 0)?;
    Some(Duration::from_secs(secs))
}

/// Why a [`try_run_jobs`] cell failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job panicked; the payload's message, when it had one.
    Panicked(String),
    /// The job exceeded the `EVE_BENCH_TIMEOUT` watchdog and was
    /// abandoned.
    TimedOut(Duration),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::TimedOut(d) => write!(f, "job timed out after {}s", d.as_secs()),
        }
    }
}

impl std::error::Error for JobError {}

/// Renders a panic payload into something printable.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `jobs` invocations of `f` (by job index) and returns the
/// results in index order.
///
/// With one worker (or one job) this degenerates to a plain serial
/// loop on the calling thread; otherwise scoped workers pull indices
/// from an atomic cursor. Result order — and therefore any JSON
/// rendered from it — is independent of scheduling.
///
/// # Panics
///
/// Re-raises the first job panic — but only after every remaining job
/// has run: a panic is caught at the job boundary, so it cannot take a
/// worker (and the queue indices it would have claimed) down with it.
pub fn run_jobs<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out = Vec::with_capacity(jobs);
    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    for result in run_jobs_caught(jobs, &f) {
        match result {
            Ok(v) => out.push(v),
            Err(p) if first_panic.is_none() => first_panic = Some(p),
            Err(_) => {}
        }
    }
    if let Some(p) = first_panic {
        std::panic::resume_unwind(p);
    }
    out
}

/// The shared fan-out: every job runs under `catch_unwind`, results
/// land in index-ordered slots.
fn run_jobs_caught<T, F>(jobs: usize, f: &F) -> Vec<Result<T, Box<dyn std::any::Any + Send>>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads().min(jobs);
    if workers <= 1 {
        return (0..jobs)
            .map(|i| catch_unwind(AssertUnwindSafe(|| f(i))))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    type Slot<T> = Mutex<Option<Result<T, Box<dyn std::any::Any + Send>>>>;
    let slots: Vec<Slot<T>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let result = catch_unwind(AssertUnwindSafe(|| f(i)));
                *slots[i].lock().expect("job slot lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("job slot lock")
                .expect("every job index was claimed and completed")
        })
        .collect()
}

/// Runs `jobs` invocations of `f` with per-job fault isolation: a
/// panicking cell becomes [`JobError::Panicked`] and, when
/// `EVE_BENCH_TIMEOUT` is set, a hung cell becomes
/// [`JobError::TimedOut`] — either way the pool keeps draining and the
/// results stay in index order.
///
/// Timeout enforcement runs each job on its own detached thread and
/// waits on a channel; an expired job's thread is *abandoned* (safe
/// Rust cannot kill it), which is why the closure and results must be
/// `'static`. Without a timeout configured, jobs run inline on the
/// workers and only panic isolation applies.
pub fn try_run_jobs<T, F>(jobs: usize, f: F) -> Vec<Result<T, JobError>>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let deadline = timeout();
    let run_one = move |i: usize| -> Result<T, JobError> {
        match deadline {
            None => catch_unwind(AssertUnwindSafe(|| f(i)))
                .map_err(|p| JobError::Panicked(panic_message(p.as_ref()))),
            Some(limit) => {
                let (tx, rx) = mpsc::channel();
                let f = Arc::clone(&f);
                // Detached: if the job hangs we abandon the thread and
                // report the cell, instead of hanging the whole sweep.
                std::thread::spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| f(i)))
                        .map_err(|p| JobError::Panicked(panic_message(p.as_ref())));
                    let _ = tx.send(result);
                });
                match rx.recv_timeout(limit) {
                    Ok(result) => result,
                    Err(_) => Err(JobError::TimedOut(limit)),
                }
            }
        }
    };
    let workers = threads().min(jobs);
    if workers <= 1 {
        return (0..jobs).map(run_one).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<T, JobError>>>> =
        (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let result = run_one(i);
                *slots[i].lock().expect("job slot lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("job slot lock")
                .expect("every job index was claimed and completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_job_order() {
        let out = run_jobs(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<u32> = run_jobs(0, |_| unreachable!("no jobs to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_still_merges_deterministically() {
        // Jobs with wildly different costs must not affect order.
        let out = run_jobs(16, |i| {
            if i % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn a_panicking_job_does_not_stall_the_queue() {
        // The regression: job 1 panics early; with the unwinding
        // worker gone, later indices it would have claimed were never
        // run. All surviving jobs must still complete before the
        // panic re-raises.
        use std::sync::atomic::AtomicU64;
        let done = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_jobs(32, |i| {
                if i == 1 {
                    panic!("cell 1 exploded");
                }
                done.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        assert!(result.is_err(), "the panic must still propagate");
        assert_eq!(done.load(Ordering::Relaxed), 31, "all other jobs ran");
    }

    #[test]
    fn try_run_jobs_reports_panics_as_failed_cells() {
        let out = try_run_jobs(8, |i| {
            assert!(i != 3, "cell 3 exploded");
            i * 2
        });
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                match r {
                    Err(JobError::Panicked(msg)) => assert!(msg.contains("cell 3")),
                    other => panic!("expected a panic cell, got {other:?}"),
                }
            } else {
                assert_eq!(*r.as_ref().expect("clean cell"), i * 2);
            }
        }
    }

    #[test]
    fn watchdog_abandons_hung_jobs() {
        // Serial path (EVE_BENCH_THREADS irrelevant): job 2 sleeps far
        // past the watchdog; the pool must report it and finish the
        // rest. The env var is process-global, so take care to restore
        // it even though tests in this binary run in one process.
        std::env::set_var("EVE_BENCH_TIMEOUT", "1");
        let out = try_run_jobs(4, |i| {
            if i == 2 {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
            i
        });
        std::env::remove_var("EVE_BENCH_TIMEOUT");
        assert_eq!(out[0], Ok(0));
        assert_eq!(out[1], Ok(1));
        assert!(matches!(out[2], Err(JobError::TimedOut(_))));
        assert_eq!(out[3], Ok(3));
    }
}
