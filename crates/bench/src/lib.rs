//! Shared helpers for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper (see DESIGN.md's experiment index); this library holds the
//! text-table formatting they share and the scoped-thread [`pool`]
//! that fans sweep jobs out across cores.

pub mod pool;

/// Renders a simple aligned text table.
///
/// # Examples
///
/// ```
/// let t = eve_bench::render_table(
///     &["sys", "speedup"],
///     &[vec!["IO".into(), "1.00".into()]],
/// );
/// assert!(t.contains("IO"));
/// ```
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{c:>w$}", w = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|s| (*s).to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// A self-contained micro-benchmark loop for the `benches/` targets.
///
/// Runs `f` once to warm caches, then repeats it for roughly 100 ms
/// (at most 10 000 iterations) and prints the mean time per iteration.
/// This deliberately trades criterion's statistics for zero
/// dependencies; the benches assert their workload invariants inline,
/// so they double as smoke tests under `cargo bench`.
pub fn time_it<T>(name: &str, mut f: impl FnMut() -> T) {
    let _ = std::hint::black_box(f());
    let start = std::time::Instant::now();
    let mut iters = 0u64;
    while (start.elapsed().as_millis() < 100 || iters < 3) && iters < 10_000 {
        std::hint::black_box(f());
        iters += 1;
    }
    let per_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<44} {iters:>6} iters  {}", fmt_ns(per_ns));
}

/// Formats a nanosecond count with an adaptive unit.
#[must_use]
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns/iter")
    } else if ns < 1e6 {
        format!("{:.2} µs/iter", ns / 1e3)
    } else {
        format!("{:.3} ms/iter", ns / 1e6)
    }
}

/// Formats a ratio like `"3.42x"`.
#[must_use]
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage like `"12.3%"`.
#[must_use]
pub fn fmt_pct(v: f64) -> String {
    format!("{v:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].ends_with('2'));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_x(3.456), "3.46x");
        assert_eq!(fmt_pct(12.34), "12.3%");
    }
}
