//! Trace tool: disassemble a kernel and watch its first instructions
//! retire — a debugging window into the simulator.
//!
//! ```sh
//! cargo run --release -p eve-bench --bin trace -- vvadd 40
//! ```

use eve_isa::{disasm, Characterization, Interpreter};
use eve_workloads::Workload;

fn pick(name: &str) -> Workload {
    Workload::tiny_by_name(name).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map_or("vvadd", String::as_str);
    let count: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(24);
    let built = pick(name).build();

    println!("=== {} (vector form, static code) ===", built.name);
    println!("{}", disasm(&built.vector));

    println!("=== first {count} retired instructions at hw VL = 64 ===");
    let mut interp = Interpreter::new(built.vector.clone(), built.memory.clone(), 64);
    let mut c = Characterization::new();
    let mut shown = 0;
    while let Some(r) = interp.step().expect("kernel runs") {
        if shown < count {
            let marker = if r.inst.is_vector() { "V" } else { " " };
            println!("{:>6} {marker} [vl={:>3}] {}", r.seq, r.vl, r.inst);
            shown += 1;
        }
        c.record(&r);
    }
    built.verify(interp.memory()).expect("golden outputs match");
    println!(
        "\nran to completion: {} dynamic instructions, VI% = {:.0}%, verified against golden",
        c.dyn_insts,
        c.vector_inst_pct()
    );
}
