//! Regenerates **Fig 7**: the EVE execution-time breakdown per design
//! point, normalized to EVE-1's total (busy / vru / memory /
//! transpose / vmu / empty / dependency stalls).

use eve_bench::{pool, render_table};
use eve_common::json::JsonValue;
use eve_sim::experiments::workload_breakdown;
use eve_workloads::Workload;

const CATEGORIES: [&str; 9] = [
    "busy",
    "vru_stall",
    "ld_mem_stall",
    "st_mem_stall",
    "ld_dt_stall",
    "st_dt_stall",
    "vmu_stall",
    "empty_stall",
    "dep_stall",
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let json = args.iter().any(|a| a == "--json");
    let suite = if tiny {
        Workload::tiny_suite()
    } else {
        Workload::suite()
    };
    // One job per workload (the EVE-1 normalization base is internal
    // to a workload); rows merge in suite order for byte-stable output.
    let rows: Vec<_> = pool::run_jobs(suite.len(), |i| workload_breakdown(&suite[i]))
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .expect("simulation succeeds")
        .into_iter()
        .flatten()
        .collect();

    if json {
        let doc = JsonValue::array(rows.iter().map(|r| {
            JsonValue::object([
                ("workload", JsonValue::from(r.workload.clone())),
                ("factor", JsonValue::from(r.factor)),
                (
                    "fractions",
                    JsonValue::object(
                        r.fractions
                            .iter()
                            .map(|(k, v)| (k.clone(), JsonValue::from(*v))),
                    ),
                ),
                ("total_cycles", JsonValue::from(r.total_cycles)),
            ])
        }));
        println!("{}", doc.to_pretty());
        return;
    }

    let mut headers: Vec<&str> = vec!["workload", "design", "total(norm)"];
    headers.extend(CATEGORIES);
    let mut table = Vec::new();
    for r in &rows {
        let total: f64 = r.fractions.values().sum();
        let mut row = vec![
            r.workload.clone(),
            format!("EVE-{}", r.factor),
            format!("{total:.3}"),
        ];
        for c in CATEGORIES {
            row.push(format!("{:.3}", r.fractions.get(c).copied().unwrap_or(0.0)));
        }
        table.push(row);
    }
    println!("Fig 7: execution breakdown normalized to EVE-1 per workload");
    println!("{}", render_table(&headers, &table));
}
