//! Ablation: data-transpose-unit count — the DESIGN.md-called-out
//! trade behind the paper's choice of eight DTUs (§VII-B: each costs
//! half a sub-array of area).
//!
//! Sweeps the DTU count on EVE-1 (heaviest transpose: 32 cycles/line)
//! and EVE-8 against pathfinder, the kernel the paper singles out for
//! transpose stalls.

use eve_bench::{pool, render_table};
use eve_core::EngineTuning;
use eve_mem::HierarchyConfig;
use eve_sim::Runner;
use eve_workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let w = if tiny {
        Workload::Pathfinder {
            rows: 4,
            cols: 2048,
        }
    } else {
        Workload::Pathfinder {
            rows: 8,
            cols: 8192,
        }
    };
    // One job per (factor, dtus) grid point; rows merge in grid order.
    let grid: Vec<(u32, usize)> = [1u32, 8]
        .iter()
        .flat_map(|&n| [1usize, 2, 4, 8, 16].iter().map(move |&d| (n, d)))
        .collect();
    let rows = pool::run_jobs(grid.len(), |i| {
        let (n, dtus) = grid[i];
        let tuning = EngineTuning {
            dtus,
            ..EngineTuning::default()
        };
        let r = Runner::new()
            .run_eve_tuned(n, tuning, &w, HierarchyConfig::table_iii())
            .expect("tuned engine runs");
        let b = r.breakdown.expect("EVE breakdown");
        let dt = b.ld_dt_stall + b.st_dt_stall;
        vec![
            format!("EVE-{n}"),
            dtus.to_string(),
            r.cycles.0.to_string(),
            dt.0.to_string(),
            format!("{:.1}%", dt.0 as f64 / b.total().0.max(1) as f64 * 100.0),
        ]
    });
    println!("Ablation: DTU count vs pathfinder runtime and transpose stalls");
    println!(
        "{}",
        render_table(
            &["design", "dtus", "cycles", "dt stall cyc", "dt stall %"],
            &rows
        )
    );
}
