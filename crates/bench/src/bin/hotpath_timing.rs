//! Hot-path wall-clock timings: the lane-bitsliced μop executor vs the
//! lane-serial scalar oracle, plus end-to-end sweep timings. Seeds the
//! perf trajectory — results land in `BENCH_hotpath.json` (override
//! with `--out PATH`, or `--out -` for stdout only).
//!
//! ```text
//! hotpath_timing [--tiny] [--out PATH] [--assert-speedup X]
//! ```
//!
//! `--assert-speedup X` exits nonzero unless the geomean μprogram
//! speedup is at least `X` (CI uses this to pin the optimisation).

use eve_bench::{fmt_x, pool, render_table};
use eve_common::json::JsonValue;
use eve_sim::experiments::workload_perf;
use eve_sim::fault::{campaign_json, FaultPlan};
use eve_sram::{Binding, EveArray, ScalarArray};
use eve_uop::{HybridConfig, MacroOpKind, ProgramLibrary};
use eve_workloads::Workload;
use std::time::Instant;

/// Lanes per array in the μprogram benchmark (one paper-sized array is
/// 256 columns at EVE-1).
const LANES: usize = 256;

/// The macro-op mix each executor runs per iteration: cheap bitwise
/// ops, the carry chain, and the shift/mask-heavy multiply.
const MIX: [MacroOpKind; 5] = [
    MacroOpKind::Add,
    MacroOpKind::Sub,
    MacroOpKind::And,
    MacroOpKind::Xor,
    MacroOpKind::Mul,
];

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Times `run` (which reports simulated cycles) until the sample is
/// stable enough, returning wall nanoseconds per simulated cycle.
fn ns_per_cycle(budget_ms: u128, mut run: impl FnMut() -> u64) -> f64 {
    let _ = std::hint::black_box(run());
    let start = Instant::now();
    let mut cycles = 0u64;
    let mut iters = 0u32;
    while (start.elapsed().as_millis() < budget_ms || iters < 3) && iters < 10_000 {
        cycles += std::hint::black_box(run());
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / cycles as f64
}

fn seed_value(lane: usize, reg: u32) -> u32 {
    (lane as u32)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(reg.wrapping_mul(0x85EB_CA6B))
        | 1
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let assert_speedup: Option<f64> = flag_value(&args, "--assert-speedup")
        .map(|v| v.parse().expect("--assert-speedup takes a float"));
    let budget_ms: u128 = if tiny { 20 } else { 80 };

    let binding = Binding::new(3, 1, 2);
    let mut per_config = Vec::new();
    let mut table = Vec::new();
    let mut log_sum = 0.0;
    for cfg in HybridConfig::all() {
        let lib = ProgramLibrary::new(cfg);
        let progs: Vec<_> = MIX.iter().map(|&k| lib.program(k)).collect();
        let mut fast = EveArray::new(cfg, LANES);
        let mut slow = ScalarArray::new(cfg, LANES);
        for lane in 0..LANES {
            for reg in [1u32, 2, 3] {
                let v = seed_value(lane, reg);
                fast.write_element(reg, lane, v);
                slow.write_element(reg, lane, v);
            }
        }
        // Cross-check before timing: the mix must agree lane-for-lane.
        for prog in &progs {
            fast.execute(prog, &binding);
            slow.execute(prog, &binding);
        }
        for lane in 0..LANES {
            assert_eq!(
                fast.read_element(3, lane),
                slow.read_element(3, lane),
                "{cfg}: executors diverge at lane {lane}"
            );
        }
        let fast_ns = ns_per_cycle(budget_ms, || {
            progs.iter().map(|p| fast.execute(p, &binding).0).sum()
        });
        let slow_ns = ns_per_cycle(budget_ms, || {
            progs.iter().map(|p| slow.execute(p, &binding).0).sum()
        });
        let speedup = slow_ns / fast_ns;
        log_sum += speedup.ln();
        table.push(vec![
            cfg.to_string(),
            format!("{slow_ns:.1}"),
            format!("{fast_ns:.1}"),
            fmt_x(speedup),
        ]);
        per_config.push(JsonValue::object([
            ("n", u64::from(cfg.segment_bits()).into()),
            ("scalar_ns_per_cycle", slow_ns.into()),
            ("bitsliced_ns_per_cycle", fast_ns.into()),
            ("speedup", speedup.into()),
        ]));
    }
    let geomean = (log_sum / HybridConfig::all().len() as f64).exp();

    // End-to-end sweeps: the tiny fig6 matrix (parallel driver) and a
    // small fault campaign (serial API), both wall-clock.
    let suite = Workload::tiny_suite();
    let t0 = Instant::now();
    let perf = pool::run_jobs(suite.len(), |i| workload_perf(&suite[i]));
    assert!(perf.iter().all(Result::is_ok), "fig6 sweep failed");
    let fig6_ms = t0.elapsed().as_secs_f64() * 1e3;

    let plan = FaultPlan {
        rates: vec![0.0, 1e-3],
        factors: vec![8],
        ..FaultPlan::default()
    };
    let t0 = Instant::now();
    let _ = campaign_json(&plan, &suite[..suite.len().min(2)]).expect("campaign runs");
    let campaign_ms = t0.elapsed().as_secs_f64() * 1e3;

    let doc = JsonValue::object([
        ("lanes", (LANES as u64).into()),
        (
            "mix",
            JsonValue::array(MIX.iter().map(|k| format!("{k:?}").into())),
        ),
        ("per_config", JsonValue::Array(per_config)),
        ("geomean_speedup", geomean.into()),
        (
            "sweeps",
            JsonValue::object([
                ("fig6_tiny_ms", fig6_ms.into()),
                ("fault_campaign_small_ms", campaign_ms.into()),
            ]),
        ),
        ("threads", (pool::threads() as u64).into()),
    ]);
    let rendered = doc.to_pretty();
    if out_path == "-" {
        println!("{rendered}");
    } else {
        std::fs::write(&out_path, format!("{rendered}\n")).expect("write BENCH_hotpath.json");
    }

    println!("Hot path: μprogram execution, {LANES} lanes, scalar oracle vs bitsliced");
    println!(
        "{}",
        render_table(
            &["config", "scalar ns/cyc", "bitsliced ns/cyc", "speedup"],
            &table
        )
    );
    println!("geomean speedup: {}", fmt_x(geomean));
    println!("fig6 --tiny sweep: {fig6_ms:.0} ms   fault campaign (small): {campaign_ms:.0} ms");
    if out_path != "-" {
        println!("wrote {out_path}");
    }
    if let Some(min) = assert_speedup {
        assert!(
            geomean >= min,
            "geomean speedup {geomean:.2}x below required {min:.2}x"
        );
    }
}
