//! Hot-path wall-clock timings across the executor tier ladder: the
//! lane-serial scalar oracle (tier 0), the lane-bitsliced interpreter
//! (tier 1), and the fused/specialized compiled programs (tier 2),
//! plus end-to-end sweep timings. Seeds the perf trajectory — results
//! land in `BENCH_hotpath.json` (override with `--out PATH`, or
//! `--out -` for stdout only).
//!
//! ```text
//! hotpath_timing [--tiny] [--out PATH] [--assert-speedup X]
//!                [--assert-tier-speedup X]
//! ```
//!
//! `--assert-speedup X` exits nonzero unless the geomean speedup of
//! the compiled tier over the scalar oracle is at least `X`;
//! `--assert-tier-speedup X` gates the compiled tier's additional
//! geomean over the interpreter (CI pins both).

use eve_bench::{fmt_x, pool, render_table};
use eve_common::json::JsonValue;
use eve_sim::experiments::workload_perf;
use eve_sim::fault::{campaign_json, FaultPlan};
use eve_sim::{Runner, SystemKind};
use eve_sram::{Binding, EveArray, ScalarArray};
use eve_uop::{fuse, HybridConfig, MacroOpKind, ProgramLibrary};
use eve_workloads::Workload;
use std::time::Instant;

/// Lanes per array in the μprogram benchmark (one paper-sized array is
/// 256 columns at EVE-1).
const LANES: usize = 256;

/// The macro-op mix each executor runs per iteration: cheap bitwise
/// ops, the carry chain, and the shift/mask-heavy multiply.
const MIX: [MacroOpKind; 5] = [
    MacroOpKind::Add,
    MacroOpKind::Sub,
    MacroOpKind::And,
    MacroOpKind::Xor,
    MacroOpKind::Mul,
];

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Times `run` (which reports simulated cycles) until the sample is
/// stable enough, returning wall nanoseconds per simulated cycle.
fn ns_per_cycle(budget_ms: u128, mut run: impl FnMut() -> u64) -> f64 {
    let _ = std::hint::black_box(run());
    let start = Instant::now();
    let mut cycles = 0u64;
    let mut iters = 0u32;
    while (start.elapsed().as_millis() < budget_ms || iters < 3) && iters < 10_000 {
        cycles += std::hint::black_box(run());
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / cycles as f64
}

fn seed_value(lane: usize, reg: u32) -> u32 {
    (lane as u32)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(reg.wrapping_mul(0x85EB_CA6B))
        | 1
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let assert_speedup: Option<f64> = flag_value(&args, "--assert-speedup")
        .map(|v| v.parse().expect("--assert-speedup takes a float"));
    let assert_tier: Option<f64> = flag_value(&args, "--assert-tier-speedup")
        .map(|v| v.parse().expect("--assert-tier-speedup takes a float"));
    let budget_ms: u128 = if tiny { 20 } else { 80 };

    let binding = Binding::new(3, 1, 2);
    let mut per_config = Vec::new();
    let mut table = Vec::new();
    let mut log_interp = 0.0;
    let mut log_compiled = 0.0;
    let mut log_tier = 0.0;
    for cfg in HybridConfig::all() {
        let lib = ProgramLibrary::new(cfg);
        let progs: Vec<_> = MIX.iter().map(|&k| lib.program(k)).collect();
        let compiled: Vec<_> = progs.iter().map(|p| fuse::compile(p, cfg, LANES)).collect();
        let mut fast = EveArray::new(cfg, LANES);
        let mut tier2 = EveArray::new(cfg, LANES);
        let mut slow = ScalarArray::new(cfg, LANES);
        for lane in 0..LANES {
            for reg in [1u32, 2, 3] {
                let v = seed_value(lane, reg);
                fast.write_element(reg, lane, v);
                tier2.write_element(reg, lane, v);
                slow.write_element(reg, lane, v);
            }
        }
        // Cross-check before timing: all three tiers must agree
        // lane-for-lane on the mix.
        for (prog, cp) in progs.iter().zip(&compiled) {
            fast.execute(prog, &binding);
            tier2.execute_compiled(cp, &binding);
            slow.execute(prog, &binding);
        }
        for lane in 0..LANES {
            let want = slow.read_element(3, lane);
            assert_eq!(
                fast.read_element(3, lane),
                want,
                "{cfg}: interpreter diverges at lane {lane}"
            );
            assert_eq!(
                tier2.read_element(3, lane),
                want,
                "{cfg}: compiled tier diverges at lane {lane}"
            );
        }
        let fast_ns = ns_per_cycle(budget_ms, || {
            progs.iter().map(|p| fast.execute(p, &binding).0).sum()
        });
        let tier2_ns = ns_per_cycle(budget_ms, || {
            compiled
                .iter()
                .map(|cp| tier2.execute_compiled(cp, &binding).0)
                .sum()
        });
        let slow_ns = ns_per_cycle(budget_ms, || {
            progs.iter().map(|p| slow.execute(p, &binding).0).sum()
        });
        let interp_speedup = slow_ns / fast_ns;
        let compiled_speedup = slow_ns / tier2_ns;
        let tier_speedup = fast_ns / tier2_ns;
        log_interp += interp_speedup.ln();
        log_compiled += compiled_speedup.ln();
        log_tier += tier_speedup.ln();
        table.push(vec![
            cfg.to_string(),
            format!("{slow_ns:.1}"),
            format!("{fast_ns:.1}"),
            format!("{tier2_ns:.1}"),
            fmt_x(compiled_speedup),
            fmt_x(tier_speedup),
        ]);
        per_config.push(JsonValue::object([
            ("n", u64::from(cfg.segment_bits()).into()),
            ("scalar_ns_per_cycle", slow_ns.into()),
            ("bitsliced_ns_per_cycle", fast_ns.into()),
            ("compiled_ns_per_cycle", tier2_ns.into()),
            ("speedup", compiled_speedup.into()),
            ("interpreter_speedup", interp_speedup.into()),
            ("tier_speedup", tier_speedup.into()),
        ]));
    }
    let configs = HybridConfig::all().len() as f64;
    let geomean = (log_compiled / configs).exp();
    let geomean_interp = (log_interp / configs).exp();
    let geomean_tier = (log_tier / configs).exp();

    // End-to-end sweeps: the tiny fig6 matrix (parallel driver) and a
    // small fault campaign (serial API), both wall-clock.
    let suite = Workload::tiny_suite();
    let t0 = Instant::now();
    let perf = pool::run_jobs(suite.len(), |i| workload_perf(&suite[i]));
    assert!(perf.iter().all(Result::is_ok), "fig6 sweep failed");
    let fig6_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Engine-side tier ladder over the Table IV tiny suite: the VSU's
    // modeled program cache must show real reuse (CI gates hits > 0).
    let runner = Runner::new();
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let mut tier2_fused = 0u64;
    for w in &suite {
        let r = runner.run(SystemKind::EveN(8), w).expect("eve8 run");
        cache_hits += r.stats.get("vsu.uprog_cache_hits");
        cache_misses += r.stats.get("vsu.uprog_cache_misses");
        tier2_fused += r.stats.get("vsu.uprog_tier2_fused");
    }

    let plan = FaultPlan {
        rates: vec![0.0, 1e-3],
        factors: vec![8],
        ..FaultPlan::default()
    };
    let t0 = Instant::now();
    let _ = campaign_json(&plan, &suite[..suite.len().min(2)]).expect("campaign runs");
    let campaign_ms = t0.elapsed().as_secs_f64() * 1e3;

    let doc = JsonValue::object([
        ("lanes", (LANES as u64).into()),
        (
            "mix",
            JsonValue::array(MIX.iter().map(|k| format!("{k:?}").into())),
        ),
        ("per_config", JsonValue::Array(per_config)),
        ("geomean_speedup", geomean.into()),
        ("geomean_interpreter_speedup", geomean_interp.into()),
        ("geomean_tier_speedup", geomean_tier.into()),
        (
            "tier",
            JsonValue::object([
                ("suite", "table4_tiny".into()),
                ("system", "eve8".into()),
                ("uprog_cache_hits", cache_hits.into()),
                ("uprog_cache_misses", cache_misses.into()),
                ("uprog_tier2_fused", tier2_fused.into()),
                (
                    "uprog_cache_hit_rate",
                    (cache_hits as f64 / (cache_hits + cache_misses).max(1) as f64).into(),
                ),
            ]),
        ),
        (
            "sweeps",
            JsonValue::object([
                ("fig6_tiny_ms", fig6_ms.into()),
                ("fault_campaign_small_ms", campaign_ms.into()),
            ]),
        ),
        ("threads", (pool::threads() as u64).into()),
    ]);
    let rendered = doc.to_pretty();
    if out_path == "-" {
        println!("{rendered}");
    } else {
        std::fs::write(&out_path, format!("{rendered}\n")).expect("write BENCH_hotpath.json");
    }

    println!("Hot path: μprogram execution, {LANES} lanes, tier ladder (scalar → interpreter → compiled)");
    println!(
        "{}",
        render_table(
            &[
                "config",
                "scalar ns/cyc",
                "interp ns/cyc",
                "compiled ns/cyc",
                "speedup",
                "tier gain"
            ],
            &table
        )
    );
    println!(
        "geomean speedup: {} (interpreter {}, compiled tier gain {})",
        fmt_x(geomean),
        fmt_x(geomean_interp),
        fmt_x(geomean_tier)
    );
    println!(
        "table4 tiny suite (eve8): {cache_hits} μprog cache hits / {cache_misses} misses, {tier2_fused} fused ops retired"
    );
    println!("fig6 --tiny sweep: {fig6_ms:.0} ms   fault campaign (small): {campaign_ms:.0} ms");
    if out_path != "-" {
        println!("wrote {out_path}");
    }
    if let Some(min) = assert_speedup {
        assert!(
            geomean >= min,
            "geomean speedup {geomean:.2}x below required {min:.2}x"
        );
    }
    if let Some(min) = assert_tier {
        assert!(
            geomean_tier >= min,
            "geomean tier speedup {geomean_tier:.2}x below required {min:.2}x"
        );
    }
}
