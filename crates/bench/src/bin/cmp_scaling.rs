//! CMP scaling: the paper's chip-multiprocessor framing, quantified.
//!
//! Every core spawns its own private ephemeral engine (§I), but the
//! LLC and the single DDR4 channel are shared. This sweep runs 1–8
//! cores, each executing its own copy of a kernel in a disjoint
//! address region, and reports how completion time and aggregate
//! throughput scale — memory-bound kernels saturate the channel while
//! compute-bound kernels scale nearly linearly, since each engine's
//! SRAM compute is private by construction.

use eve_bench::render_table;
use eve_sim::{run_cmp, SystemKind};
use eve_workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let workloads = if tiny {
        vec![Workload::vvadd(4096), Workload::Mmult { n: 16 }]
    } else {
        vec![Workload::vvadd(32768), Workload::Mmult { n: 96 }]
    };
    let mut rows = Vec::new();
    for w in &workloads {
        for sys in [SystemKind::EveN(8), SystemKind::O3Dv] {
            let mut solo_finish = 0u64;
            for cores in [1usize, 2, 4, 8] {
                let r = run_cmp(sys, w, cores).expect("cmp runs");
                if cores == 1 {
                    solo_finish = r.finish.0;
                }
                let slowdown = r.finish.0 as f64 / solo_finish as f64;
                let throughput = cores as f64 / slowdown;
                rows.push(vec![
                    w.name().to_string(),
                    sys.to_string(),
                    cores.to_string(),
                    r.finish.0.to_string(),
                    format!("{slowdown:.2}x"),
                    format!("{throughput:.2}x"),
                ]);
            }
        }
    }
    println!("CMP scaling: per-core private engines, shared LLC + DRAM");
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "system",
                "cores",
                "finish (cyc)",
                "slowdown",
                "agg. throughput",
            ],
            &rows
        )
    );
}
