//! Prints the **§VI.B energy model**: per-element macro-op energies
//! (in vanilla-SRAM read-equivalents) across the design points, and
//! the §VII argument that design points stay within the same energy
//! envelope while trading latency for throughput.

use eve_analytical::energy::energy_per_element;
use eve_bench::render_table;
use eve_sram::{LayoutModel, SramGeometry};
use eve_uop::{HybridConfig, MacroOpKind};

fn main() {
    let kinds: [(&str, MacroOpKind); 5] = [
        ("add", MacroOpKind::Add),
        ("xor", MacroOpKind::Xor),
        ("mul", MacroOpKind::Mul),
        ("divu", MacroOpKind::Divu),
        ("slli13", MacroOpKind::SllI(13)),
    ];
    let mut rows = Vec::new();
    for cfg in HybridConfig::all() {
        let n = cfg.segment_bits();
        let lanes = LayoutModel::new(SramGeometry::PAPER, 32, 32, n)
            .expect("paper layout")
            .lanes();
        let mut row = vec![format!("EVE-{n}"), lanes.to_string()];
        for (_, kind) in kinds {
            row.push(format!("{:.2}", energy_per_element(kind, cfg, lanes)));
        }
        rows.push(row);
    }
    let mut headers = vec!["design", "lanes"];
    headers.extend(kinds.iter().map(|(name, _)| *name));
    println!("Energy per element, in vanilla-SRAM read-equivalents (blc = 1.2x a read)");
    println!("{}", render_table(&headers, &rows));
    println!(
        "The spread across design points stays within ~2x for add/logic —\n\
         the paradigms trade latency for throughput at comparable energy (§VII)."
    );
}
