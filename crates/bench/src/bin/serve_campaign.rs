//! Serving-resilience campaign: sweeps pool size × fault-storm
//! intensity × breaker policy over one measured service profile,
//! running the deterministic serving simulation for every cell and
//! replaying each cell's trace through the serve auditor.
//!
//! Output is a deterministic JSON document — the same flags always
//! produce byte-identical bytes, serial or parallel (cell seeds are
//! pre-derived serially, the service profile is measured once before
//! the fan-out, and results merge in grid order; set
//! `EVE_BENCH_THREADS=1` to force one thread). A panicking or hung
//! cell becomes an error row, is summarized on stderr, and fails the
//! process — as does any audit violation or SDC.
//!
//! ```text
//! serve_campaign [--seed N] [--factor N] [--pools P1,P2,..]
//!                [--intensities I1,I2,..] [--breakers default,aggressive,lenient]
//!                [--requests N] [--gap CYCLES] [--slack F]
//!                [--workloads N] [--no-kill]
//! ```
//!
//! By default every cell's storm also kills engine 1 a quarter of the
//! way through the horizon (pools of one are spared — killing their
//! only engine tests the fallback, not resilience); `--no-kill` leaves
//! only the synthetic storm.

use eve_bench::pool;
use eve_common::json::JsonValue;
use eve_common::SplitMix64;
use eve_obs::Tracer;
use eve_serve::{
    audit_serve, BreakerPolicy, FaultStorm, ServeConfig, ServeSim, ServiceProfile, TrafficConfig,
};
use eve_workloads::Workload;
use std::sync::Arc;

/// One sweep cell's coordinates, seeds pre-derived in grid order.
#[derive(Debug, Clone, Copy)]
struct Cell {
    pool: usize,
    intensity: f64,
    breaker: &'static str,
    storm_seed: u64,
    serve_seed: u64,
    traffic_seed: u64,
}

struct Plan {
    seed: u64,
    factor: u32,
    pools: Vec<usize>,
    intensities: Vec<f64>,
    breakers: Vec<&'static str>,
    requests: usize,
    /// Mean inter-arrival gap; `None` (the default) derives it from
    /// the measured profile as its mean engine service time, so the
    /// offered load tracks whatever workloads the profile measured
    /// instead of assuming a service-time scale.
    mean_gap: Option<u64>,
    deadline_slack: f64,
    kill: bool,
}

impl Default for Plan {
    fn default() -> Self {
        Self {
            seed: 0x5E7E_CA3E,
            factor: 8,
            pools: vec![2, 4],
            intensities: vec![0.0, 1.0, 2.5],
            breakers: vec!["default", "aggressive", "lenient"],
            requests: 200,
            mean_gap: None,
            deadline_slack: 6.0,
            kill: true,
        }
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn breaker_name(s: &str) -> &'static str {
    match s {
        "default" => "default",
        "aggressive" => "aggressive",
        "lenient" => "lenient",
        other => panic!("unknown breaker {other:?} (default|aggressive|lenient)"),
    }
}

/// Expands the plan into its cell list. Seed derivation must stay
/// here — serial, in grid order — or parallel runs would diverge from
/// serial ones.
fn cells(plan: &Plan) -> Vec<Cell> {
    let mut seeder = SplitMix64::new(plan.seed);
    let mut out = Vec::new();
    for &pool in &plan.pools {
        for &intensity in &plan.intensities {
            for &breaker in &plan.breakers {
                out.push(Cell {
                    pool,
                    intensity,
                    breaker,
                    storm_seed: seeder.next_u64(),
                    serve_seed: seeder.next_u64(),
                    traffic_seed: seeder.next_u64(),
                });
            }
        }
    }
    out
}

/// One finished cell: its JSON row plus the numbers the summary and
/// exit-code policy need (carried alongside rather than re-parsed out
/// of the JSON).
struct CellOutcome {
    row: JsonValue,
    availability: f64,
    sdc: u64,
    opens: u64,
    recloses: u64,
}

/// Runs one cell: build the storm, run the serving simulation under a
/// fresh tracer, audit the trace, and render the row.
fn run_cell(plan: &Plan, profile: &ServiceProfile, cell: Cell) -> Result<CellOutcome, String> {
    let mean_gap = plan.mean_gap.unwrap_or_else(|| profile.mean_eve_cycles());
    let horizon = plan.requests as u64 * mean_gap;
    let mut storm = FaultStorm::synth(cell.storm_seed, cell.pool, horizon, cell.intensity);
    if plan.kill && cell.pool > 1 {
        storm = storm.merged(FaultStorm::kill_one(1, horizon / 4));
    }
    let cfg = ServeConfig {
        pool: cell.pool,
        breaker: BreakerPolicy::by_name(cell.breaker)
            .ok_or_else(|| format!("unknown breaker policy {:?}", cell.breaker))?,
        seed: cell.serve_seed,
        ..ServeConfig::default()
    };
    let traffic = TrafficConfig {
        requests: plan.requests,
        mean_gap,
        deadline_slack: plan.deadline_slack,
        seed: cell.traffic_seed,
    };
    let tracer = Tracer::new();
    let report = ServeSim::new(cfg, profile.clone(), traffic, storm)
        .map_err(|e| e.to_string())?
        .with_tracer(&tracer)
        .run();
    let audit = audit_serve(&tracer, &report).map_err(|e| format!("audit: {e}"))?;
    let row = JsonValue::object([
        ("pool", JsonValue::from(cell.pool as u64)),
        ("intensity", JsonValue::from(cell.intensity)),
        ("breaker", JsonValue::from(cell.breaker)),
        ("storm_seed", JsonValue::from(cell.storm_seed)),
        ("audited_events", JsonValue::from(audit.events as u64)),
        ("report", report.to_json()),
    ]);
    Ok(CellOutcome {
        row,
        availability: report.availability,
        sdc: report.sdc,
        opens: report.breaker_opens(),
        recloses: report.breaker_recloses(),
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut plan = Plan::default();
    if let Some(seed) = flag_value(&args, "--seed") {
        plan.seed = seed.parse().expect("--seed takes a u64");
    }
    if let Some(factor) = flag_value(&args, "--factor") {
        plan.factor = factor.parse().expect("--factor takes a u32");
    }
    if let Some(pools) = flag_value(&args, "--pools") {
        plan.pools = pools
            .split(',')
            .map(|p| p.parse().expect("--pools takes comma-separated counts"))
            .collect();
    }
    if let Some(intensities) = flag_value(&args, "--intensities") {
        plan.intensities = intensities
            .split(',')
            .map(|i| {
                i.parse()
                    .expect("--intensities takes comma-separated floats")
            })
            .collect();
    }
    if let Some(breakers) = flag_value(&args, "--breakers") {
        plan.breakers = breakers.split(',').map(breaker_name).collect();
    }
    if let Some(requests) = flag_value(&args, "--requests") {
        plan.requests = requests.parse().expect("--requests takes a count");
    }
    if let Some(gap) = flag_value(&args, "--gap") {
        plan.mean_gap = Some(gap.parse().expect("--gap takes cycles"));
    }
    if let Some(slack) = flag_value(&args, "--slack") {
        plan.deadline_slack = slack.parse().expect("--slack takes a float");
    }
    if args.iter().any(|a| a == "--no-kill") {
        plan.kill = false;
    }
    let workloads: Vec<Workload> = match flag_value(&args, "--workloads") {
        Some(n) => Workload::tiny_suite()
            .into_iter()
            .take(n.parse().expect("--workloads takes a count"))
            .collect(),
        None => Workload::tiny_suite(),
    };
    // The profile is measured ONCE with the real timing model, before
    // the fan-out, so every cell prices service identically and the
    // measurement never races the sweep.
    let max_pool = plan.pools.iter().copied().max().unwrap_or(1);
    let profile = Arc::new(
        ServiceProfile::measured(plan.factor, &workloads, max_pool)
            .expect("profile measurement succeeds"),
    );
    let grid = Arc::new(cells(&plan));
    let plan = Arc::new(plan);
    let results = pool::try_run_jobs(grid.len(), {
        let grid = Arc::clone(&grid);
        let plan = Arc::clone(&plan);
        let profile = Arc::clone(&profile);
        move |i| run_cell(&plan, &profile, grid[i])
    });

    let mut rows = Vec::with_capacity(results.len());
    let mut errors: Vec<(Cell, String)> = Vec::new();
    let mut min_availability = f64::INFINITY;
    let mut total_sdc = 0u64;
    let mut opens = 0u64;
    let mut recloses = 0u64;
    for (result, &cell) in results.into_iter().zip(grid.iter()) {
        match result {
            Ok(Ok(outcome)) => {
                min_availability = min_availability.min(outcome.availability);
                total_sdc += outcome.sdc;
                opens += outcome.opens;
                recloses += outcome.recloses;
                rows.push(outcome.row);
            }
            Ok(Err(msg)) => errors.push((cell, msg)),
            Err(job_err) => errors.push((cell, job_err.to_string())),
        }
    }
    for (cell, msg) in &errors {
        rows.push(JsonValue::object([
            ("pool", JsonValue::from(cell.pool as u64)),
            ("intensity", JsonValue::from(cell.intensity)),
            ("breaker", JsonValue::from(cell.breaker)),
            ("storm_seed", JsonValue::from(cell.storm_seed)),
            ("error", JsonValue::from(msg.as_str())),
        ]));
    }
    eprintln!(
        "serve_campaign: {} cells, {} error rows, min availability {:.4}, {} SDCs",
        grid.len(),
        errors.len(),
        if min_availability.is_finite() {
            min_availability
        } else {
            0.0
        },
        total_sdc
    );
    for (cell, msg) in &errors {
        eprintln!(
            "  error cell: pool={} intensity={} breaker={}: {}",
            cell.pool, cell.intensity, cell.breaker, msg
        );
    }
    let doc = JsonValue::object([
        ("seed", JsonValue::from(plan.seed)),
        ("factor", JsonValue::from(u64::from(plan.factor))),
        (
            "profile",
            JsonValue::object([
                (
                    "workloads",
                    JsonValue::Array(
                        profile
                            .names
                            .iter()
                            .map(|n| JsonValue::from(n.as_str()))
                            .collect(),
                    ),
                ),
                (
                    "eve_cycles",
                    JsonValue::Array(profile.eve_cycles.iter().map(|&c| c.into()).collect()),
                ),
                (
                    "fallback_cycles",
                    JsonValue::Array(profile.fallback_cycles.iter().map(|&c| c.into()).collect()),
                ),
            ]),
        ),
        (
            "summary",
            JsonValue::object([
                ("cells", JsonValue::from(grid.len() as u64)),
                ("failed", JsonValue::from(errors.len() as u64)),
                (
                    "min_availability",
                    JsonValue::from(if min_availability.is_finite() {
                        min_availability
                    } else {
                        0.0
                    }),
                ),
                ("total_sdc", JsonValue::from(total_sdc)),
                ("breaker_opens", JsonValue::from(opens)),
                ("breaker_recloses", JsonValue::from(recloses)),
            ]),
        ),
        ("runs", JsonValue::Array(rows)),
    ]);
    println!("{}", doc.to_pretty());
    if !errors.is_empty() || total_sdc > 0 {
        std::process::exit(1);
    }
}
