//! Trace a kernel run and export it for `chrome://tracing` (or
//! <https://ui.perfetto.dev>), then audit the stall attribution.
//!
//! ```sh
//! cargo run --release -p eve-bench --features obs --bin trace_run -- \
//!     --kernel vvadd --system eve8 --out trace.json
//! ```
//!
//! Exits nonzero if the trace fails the attribution audit, if the
//! exported JSON does not parse, or if the binary was built without
//! the `obs` feature (there would be nothing to export).

use eve_common::json::JsonValue;
use eve_obs::{chrome_trace, Tracer};
use eve_sim::{audit_run, Runner, SystemKind};
use eve_workloads::Workload;

fn parse_system(name: &str) -> Option<SystemKind> {
    match name.to_ascii_lowercase().as_str() {
        "io" => Some(SystemKind::Io),
        "o3" => Some(SystemKind::O3),
        "o3iv" | "o3+iv" => Some(SystemKind::O3Iv),
        "o3dv" | "o3+dv" => Some(SystemKind::O3Dv),
        s => s
            .strip_prefix("eve")
            .map(|n| n.trim_start_matches('-'))
            .and_then(|n| n.parse().ok())
            .map(SystemKind::EveN),
    }
}

fn usage_exit(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: trace_run [--kernel NAME] [--system io|o3|o3iv|o3dv|eveN] [--out PATH]\n\
         kernels: {}",
        Workload::names().join(", ")
    );
    std::process::exit(1);
}

fn main() {
    if !cfg!(feature = "obs") {
        eprintln!(
            "trace_run was built without trace emission; rebuild with\n\
             cargo run --release -p eve-bench --features obs --bin trace_run"
        );
        std::process::exit(1);
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kernel = "vvadd".to_string();
    let mut system = "eve8".to_string();
    let mut out = "trace.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab = |slot: &mut String| match it.next() {
            Some(v) => *slot = v.clone(),
            None => usage_exit(&format!("{a} needs a value")),
        };
        match a.as_str() {
            "--kernel" => grab(&mut kernel),
            "--system" => grab(&mut system),
            "--out" => grab(&mut out),
            other => usage_exit(&format!("unknown argument {other}")),
        }
    }

    let workload = Workload::tiny_by_name(&kernel).unwrap_or_else(|e| usage_exit(&e.to_string()));
    let sys =
        parse_system(&system).unwrap_or_else(|| usage_exit(&format!("unknown system {system}")));

    let tracer = Tracer::new();
    let report = Runner::with_tracer(&tracer)
        .run(sys, &workload)
        .expect("simulation succeeds");

    let summary = match audit_run(&tracer, &report) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("attribution audit FAILED: {e}");
            std::process::exit(1);
        }
    };

    let doc = chrome_trace(&tracer.events()).to_compact();
    if let Err(e) = JsonValue::parse(&doc) {
        eprintln!("exported trace is not valid JSON: {e}");
        std::process::exit(1);
    }
    std::fs::write(&out, &doc).expect("trace file writes");

    println!(
        "{sys} on {}: {} cycles, {} events -> {out}",
        report.workload, report.cycles.0, summary.events
    );
    println!(
        "audit: OK ({}tiled; spawn = {} cycles)",
        if summary.tiled { "" } else { "not " },
        summary.spawn_cycles
    );
    println!("report: {}", report.to_json().to_compact());
    println!("open {out} in chrome://tracing or https://ui.perfetto.dev");
}
