//! Regenerates **Fig 2**: latency and throughput of add/logic and
//! multiply versus the parallelization factor, normalized to a factor
//! of one (256×256 array, 32 vector registers).

use eve_analytical::spectrum::spectrum_paper;
use eve_bench::render_table;

fn main() {
    let pts = spectrum_paper();
    let base = pts[0];
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            let (al, ml, at, mt) = p.normalized_to(&base);
            vec![
                format!("{} ({})", p.factor, p.alus),
                p.add_latency.to_string(),
                p.mul_latency.to_string(),
                format!("{al:.3}"),
                format!("{ml:.3}"),
                format!("{at:.2}"),
                format!("{mt:.2}"),
            ]
        })
        .collect();
    println!("Fig 2: 256x256 S-CIM SRAM, 32 vregs, normalized to factor 1");
    println!(
        "{}",
        render_table(
            &[
                "factor (ALUs)",
                "add cyc",
                "mul cyc",
                "add lat (norm)",
                "mul lat (norm)",
                "add thr (norm)",
                "mul thr (norm)",
            ],
            &rows
        )
    );
    let peak = pts
        .iter()
        .max_by(|a, b| a.add_throughput.total_cmp(&b.add_throughput))
        .expect("nonempty");
    println!(
        "throughput peaks at factor {} (balanced utilization), as in the paper",
        peak.factor
    );
}
