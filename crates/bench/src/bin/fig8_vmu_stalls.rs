//! Regenerates **Fig 8**: the percentage of execution time the VMU is
//! stalled issuing requests to the LLC (MSHR back-pressure).

use eve_bench::{fmt_pct, pool, render_table};
use eve_common::json::JsonValue;
use eve_sim::experiments::workload_vmu_stalls;
use eve_workloads::Workload;
use std::collections::BTreeMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let json = args.iter().any(|a| a == "--json");
    let suite = if tiny {
        Workload::tiny_suite()
    } else {
        Workload::suite()
    };
    let rows: Vec<_> = pool::run_jobs(suite.len(), |i| workload_vmu_stalls(&suite[i]))
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .expect("simulation succeeds")
        .into_iter()
        .flatten()
        .collect();

    if json {
        let doc = JsonValue::array(rows.iter().map(|r| {
            JsonValue::object([
                ("workload", JsonValue::from(r.workload.clone())),
                ("factor", JsonValue::from(r.factor)),
                ("stall_fraction", JsonValue::from(r.stall_fraction)),
            ])
        }));
        println!("{}", doc.to_pretty());
        return;
    }

    // Pivot: workload rows, EVE-n columns.
    let mut by_workload: BTreeMap<String, BTreeMap<u32, f64>> = BTreeMap::new();
    for r in rows {
        by_workload
            .entry(r.workload)
            .or_default()
            .insert(r.factor, r.stall_fraction);
    }
    let mut table = Vec::new();
    for (w, cols) in &by_workload {
        let mut row = vec![w.clone()];
        for n in [1u32, 2, 4, 8, 16, 32] {
            row.push(fmt_pct(cols.get(&n).copied().unwrap_or(0.0) * 100.0));
        }
        table.push(row);
    }
    println!("Fig 8: VMU cache-induced issue stalls (fraction of execution time)");
    println!(
        "{}",
        render_table(
            &["workload", "EVE-1", "EVE-2", "EVE-4", "EVE-8", "EVE-16", "EVE-32"],
            &table
        )
    );
}
