//! Prints **Table III**: the simulated system configurations.

use eve_bench::render_table;
use eve_cpu::VectorUnit;
use eve_mem::{CacheConfig, DramConfig};
use eve_sim::SystemKind;

fn cache_row(c: &CacheConfig) -> Vec<String> {
    vec![
        c.name.clone(),
        format!("{} KB", c.size_bytes >> 10),
        format!("{}-way", c.ways),
        format!("{}-cycle hit", c.hit_latency),
        format!("{} MSHRs", c.mshrs),
        format!("{} banks", c.banks),
    ]
}

fn main() {
    println!("Table III: memory hierarchy (shared by all systems)");
    let rows = vec![
        cache_row(&CacheConfig::l1i()),
        cache_row(&CacheConfig::l1d()),
        cache_row(&CacheConfig::l2()),
        cache_row(&CacheConfig::l2_vector_mode()),
        cache_row(&CacheConfig::llc()),
    ];
    println!(
        "{}",
        render_table(
            &["level", "size", "assoc", "latency", "mshrs", "banks"],
            &rows
        )
    );
    let d = DramConfig::ddr4_2400();
    println!(
        "memory: single-channel DDR4-2400-like ({}-cycle latency, {} cycles/line)\n",
        d.latency, d.cycles_per_line
    );

    println!("systems:");
    let mut rows = Vec::new();
    for sys in SystemKind::all() {
        let (vl, notes): (String, &str) = match sys {
            SystemKind::Io => ("-".into(), "single-issue in-order RV-like core"),
            SystemKind::O3 => ("-".into(), "8-way out-of-order core"),
            SystemKind::O3Iv => (
                "4".into(),
                "integrated unit, OOO issue, 3 shared exec pipes",
            ),
            SystemKind::O3Dv => (
                "64".into(),
                "decoupled engine, in-order issue, 4 exec pipes",
            ),
            SystemKind::EveN(n) => {
                let vl = eve_core::EveEngine::new(n).expect("valid factor").hw_vl();
                (vl.to_string(), "L2-resident engine, in-order, 1 exec pipe")
            }
        };
        rows.push(vec![
            sys.to_string(),
            vl,
            format!("{}", sys.cycle_time()),
            format!("{:.2}x", sys.relative_area()),
            notes.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["system", "hw VL", "cycle time", "rel. area", "notes"],
            &rows
        )
    );
}
