//! Regenerates **Fig 1**: data organization in an S-CIM SRAM array as
//! the register count and parallelization factor vary (16×16 array,
//! 8-bit elements), reporting in-situ ALUs and utilization.

use eve_bench::{fmt_pct, render_table};
use eve_sram::{LayoutModel, SramGeometry};

fn main() {
    let mut rows = Vec::new();
    for &vregs in &[1u32, 2, 4] {
        for &p in &[1u32, 2, 4, 8] {
            let m = LayoutModel::new(SramGeometry::FIG1, 8, vregs, p).expect("valid Fig 1 layout");
            let regime = if m.column_underutilized() {
                "column-underutilized"
            } else if m.row_underutilized() {
                "row-underutilized"
            } else {
                "balanced"
            };
            rows.push(vec![
                vregs.to_string(),
                p.to_string(),
                m.segments().to_string(),
                m.lanes().to_string(),
                fmt_pct(m.utilization() * 100.0),
                regime.to_string(),
            ]);
        }
    }
    println!("Fig 1: 16x16 S-CIM array, 8-bit elements");
    println!(
        "{}",
        render_table(
            &[
                "vregs",
                "factor",
                "segments",
                "in-situ ALUs",
                "utilization",
                "regime"
            ],
            &rows
        )
    );
    println!("Paper geometry (256x256, 32-bit, 32 vregs):");
    let mut rows = Vec::new();
    for &p in &[1u32, 2, 4, 8, 16, 32] {
        let m = LayoutModel::new(SramGeometry::PAPER, 32, 32, p).expect("valid layout");
        rows.push(vec![
            p.to_string(),
            m.lanes().to_string(),
            (m.lanes() * 32).to_string(),
            fmt_pct(m.utilization() * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["factor", "lanes/array", "hw VL (32 arrays)", "utilization"],
            &rows
        )
    );
}
