//! Fault-injection campaign: sweeps fault rate × protection mode ×
//! EVE factor across the tiny workload suite, classifying every run as
//! masked, detected + corrected, detected + degraded, or silent data
//! corruption, and reporting per-mode mean availability.
//!
//! Output is a deterministic JSON document — the same seed always
//! produces byte-identical bytes, so campaign reports diff cleanly.
//! Cells fan out across threads (injector seeds are pre-derived
//! serially and results merge in job order, so the bytes match a
//! serial run; set `EVE_BENCH_THREADS=1` to force one). A panicking
//! or hung cell (see `EVE_BENCH_TIMEOUT`) becomes an error row in the
//! document instead of killing the sweep.
//!
//! ```text
//! fault_campaign [--seed N] [--rates R1,R2,..] [--factors N1,N2,..]
//!                [--modes parity,secded,secded_sparing] [--retries K]
//!                [--workloads W] [--write-only]
//! ```

use eve_bench::pool;
use eve_sim::fault::{
    campaign_doc, campaign_jobs, run_campaign_job, CampaignFailure, CampaignMode, FaultPlan,
    RecoveryPolicy,
};
use eve_workloads::Workload;
use std::sync::Arc;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_mode(s: &str) -> CampaignMode {
    match s {
        "parity" => CampaignMode::Parity,
        "secded" => CampaignMode::Secded,
        "secded_sparing" | "sparing" => CampaignMode::SecdedSparing,
        other => panic!("unknown mode {other:?} (parity|secded|secded_sparing)"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut plan = FaultPlan::default();
    if let Some(seed) = flag_value(&args, "--seed") {
        plan.seed = seed.parse().expect("--seed takes a u64");
    }
    if let Some(rates) = flag_value(&args, "--rates") {
        plan.rates = rates
            .split(',')
            .map(|r| r.parse().expect("--rates takes comma-separated floats"))
            .collect();
    }
    if let Some(factors) = flag_value(&args, "--factors") {
        plan.factors = factors
            .split(',')
            .map(|n| n.parse().expect("--factors takes comma-separated ints"))
            .collect();
    }
    if let Some(modes) = flag_value(&args, "--modes") {
        plan.modes = modes.split(',').map(parse_mode).collect();
    }
    if let Some(retries) = flag_value(&args, "--retries") {
        plan.policy = RecoveryPolicy {
            max_retries: retries.parse().expect("--retries takes a u32"),
            ..RecoveryPolicy::default()
        };
    }
    if args.iter().any(|a| a == "--write-only") {
        plan.write_only = true;
    }
    let workloads = match flag_value(&args, "--workloads") {
        Some(n) => Workload::tiny_suite()
            .into_iter()
            .take(n.parse().expect("--workloads takes a count"))
            .collect(),
        None => Workload::tiny_suite(),
    };
    let jobs = Arc::new(campaign_jobs(&plan, &workloads));
    let shared_plan = Arc::new(plan.clone());
    let results = pool::try_run_jobs(jobs.len(), {
        let jobs = Arc::clone(&jobs);
        move |i| run_campaign_job(&shared_plan, &jobs[i])
    });
    let cells: Vec<_> = results
        .into_iter()
        .zip(jobs.iter())
        .map(|(result, &job)| match result {
            Ok(Ok(run)) => Ok(run),
            Ok(Err(sim_err)) => Err(CampaignFailure {
                job,
                error: sim_err.to_string(),
            }),
            Err(job_err) => Err(CampaignFailure {
                job,
                error: job_err.to_string(),
            }),
        })
        .collect();
    // Error rows (panicked or watchdog-killed cells) keep the sweep
    // alive, but they must not pass silently: summarize them on stderr
    // and fail the process so CI catches a flaky cell even when the
    // JSON document itself renders fine.
    let errors: Vec<&CampaignFailure> = cells.iter().filter_map(|c| c.as_ref().err()).collect();
    eprintln!(
        "fault_campaign: {} cells, {} error rows",
        cells.len(),
        errors.len()
    );
    for failure in &errors {
        eprintln!(
            "  error cell: rate={} mode={} factor={} seed={}: {}",
            failure.job.rate,
            failure.job.mode.as_str(),
            failure.job.factor,
            failure.job.seed,
            failure.error
        );
    }
    let failed = !errors.is_empty();
    println!("{}", campaign_doc(&plan, cells));
    if failed {
        std::process::exit(1);
    }
}
