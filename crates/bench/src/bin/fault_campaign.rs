//! Fault-injection campaign: sweeps fault rate × EVE factor across the
//! tiny workload suite, classifying every run as masked, detected +
//! corrected, detected + degraded, or silent data corruption.
//!
//! Output is a deterministic JSON document — the same seed always
//! produces byte-identical bytes, so campaign reports diff cleanly.
//! Cells fan out across threads (injector seeds are pre-derived
//! serially and results merge in job order, so the bytes match a
//! serial run; set `EVE_BENCH_THREADS=1` to force one).
//!
//! ```text
//! fault_campaign [--seed N] [--rates R1,R2,..] [--factors N1,N2,..]
//!                [--retries K] [--workloads W]
//! ```

use eve_bench::pool;
use eve_sim::fault::{campaign_doc, campaign_jobs, run_campaign_job, FaultPlan, RecoveryPolicy};
use eve_workloads::Workload;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut plan = FaultPlan::default();
    if let Some(seed) = flag_value(&args, "--seed") {
        plan.seed = seed.parse().expect("--seed takes a u64");
    }
    if let Some(rates) = flag_value(&args, "--rates") {
        plan.rates = rates
            .split(',')
            .map(|r| r.parse().expect("--rates takes comma-separated floats"))
            .collect();
    }
    if let Some(factors) = flag_value(&args, "--factors") {
        plan.factors = factors
            .split(',')
            .map(|n| n.parse().expect("--factors takes comma-separated ints"))
            .collect();
    }
    if let Some(retries) = flag_value(&args, "--retries") {
        plan.policy = RecoveryPolicy {
            max_retries: retries.parse().expect("--retries takes a u32"),
        };
    }
    let workloads = match flag_value(&args, "--workloads") {
        Some(n) => Workload::tiny_suite()
            .into_iter()
            .take(n.parse().expect("--workloads takes a count"))
            .collect(),
        None => Workload::tiny_suite(),
    };
    let jobs = campaign_jobs(&plan, &workloads);
    let runs = pool::run_jobs(jobs.len(), |i| run_campaign_job(&plan, &jobs[i]))
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .expect("campaign runs");
    println!("{}", campaign_doc(&plan, runs));
}
