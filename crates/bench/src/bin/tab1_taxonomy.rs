//! Prints **Table I**: the vector-architecture taxonomy, annotated
//! with where this repository's machines sit.

use eve_bench::render_table;

fn main() {
    let rows = vec![
        vec!["Length", "fixed, short", "scalable, long", "scalable"],
        vec!["Element width", "variable", "fixed", "variable"],
        vec!["Predication", "limited", "full", "full"],
        vec!["Cross-element ops", "full", "limited", "full"],
        vec!["Memory gather/scatter", "limited", "full", "full"],
        vec!["Integration", "integrated", "decoupled", "either"],
        vec!["Speculative execution", "yes", "no", "either"],
        vec!["Compute pipeline", "integrated", "decoupled", "either"],
        vec!["Memory bandwidth", "modest", "large", "either"],
        vec!["Memory latency", "low", "high", "either"],
    ]
    .into_iter()
    .map(|r| r.into_iter().map(String::from).collect())
    .collect::<Vec<Vec<String>>>();
    println!("Table I: a summary of vector architectures");
    println!(
        "{}",
        render_table(
            &["attribute", "packed SIMD", "long vector", "next generation"],
            &rows
        )
    );
    println!(
        "This repository implements the next-generation column three ways:\n\
         O3+IV (integrated, VL=4), O3+DV (decoupled, VL=64), and O3+EVE\n\
         (an ephemeral engine in the L2, VL up to 2048) — all running the\n\
         same strip-mined binaries (eve-isa)."
    );
}
