//! Ablation: out-of-order window size — does EVE need a big core?
//!
//! §V-A: EVE receives instructions at *commit*, so its throughput
//! should not depend on how aggressive the control processor's window
//! is. This sweep shrinks the O3 reorder buffer and compares the
//! scalar O3 baseline (window-sensitive on memory-level parallelism)
//! with O3+EVE-8 (nearly window-insensitive) — evidence for the
//! paper's claim that EVE reaches decoupled-engine performance without
//! decoupled-engine hardware in the core.

use eve_bench::render_table;
use eve_cpu::{O3Config, O3Core, VectorUnit};
use eve_isa::Interpreter;
use eve_mem::HierarchyConfig;
use eve_workloads::Workload;

fn run_with_window<V: VectorUnit>(
    make_unit: impl Fn() -> V,
    vector: bool,
    w: &Workload,
    window: usize,
) -> u64 {
    let built = w.build();
    let mut core = O3Core::with_unit(make_unit(), HierarchyConfig::table_iii());
    core.set_config(O3Config {
        window,
        ..O3Config::default()
    });
    let prog = if vector {
        built.vector.clone()
    } else {
        built.scalar.clone()
    };
    let mut interp = Interpreter::new(prog, built.memory.clone(), core.hw_vl());
    while let Some(r) = interp.step().expect("runs") {
        core.retire(&r).expect("retires");
    }
    let cycles = core.finish();
    built.verify(interp.memory()).expect("golden match");
    cycles.0
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let w = if tiny {
        Workload::Backprop {
            inputs: 2048,
            hidden: 16,
        }
    } else {
        Workload::Backprop {
            inputs: 16384,
            hidden: 16,
        }
    };
    let mut rows = Vec::new();
    let mut base = (0u64, 0u64);
    for window in [16usize, 48, 96, 192, 384] {
        let o3 = run_with_window(|| eve_cpu::NoVector, false, &w, window);
        let eve = run_with_window(
            || eve_core::EveEngine::new(8).expect("valid"),
            true,
            &w,
            window,
        );
        if window == 16 {
            base = (o3, eve);
        }
        rows.push(vec![
            window.to_string(),
            o3.to_string(),
            format!("{:.2}x", base.0 as f64 / o3 as f64),
            eve.to_string(),
            format!("{:.2}x", base.1 as f64 / eve as f64),
        ]);
    }
    println!(
        "Ablation: O3 window size on {} (speedups vs a 16-entry window)",
        w.name()
    );
    println!(
        "{}",
        render_table(
            &[
                "window",
                "O3 cyc",
                "O3 speedup",
                "O3+EVE-8 cyc",
                "EVE speedup"
            ],
            &rows
        )
    );
    println!("EVE receives work at commit (§V-A): the engine barely cares about the window.");
}
