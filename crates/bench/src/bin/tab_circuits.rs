//! Regenerates the **§VI.B circuit results**: per-array and banked
//! area overheads, total EVE overhead, and cycle times per design
//! point.

use eve_analytical::area::{array_overhead_pct, banked_overhead_pct, eve_total_overhead_pct};
use eve_analytical::timing::{cycle_time, penalty_ratio};
use eve_bench::{fmt_pct, render_table};

fn main() {
    let rows: Vec<Vec<String>> = [1u32, 2, 4, 8, 16, 32]
        .iter()
        .map(|&n| {
            vec![
                format!("EVE-{n}"),
                fmt_pct(array_overhead_pct(n)),
                fmt_pct(banked_overhead_pct(n)),
                fmt_pct(eve_total_overhead_pct(n)),
                format!("{}", cycle_time(n)),
                format!("{:.3}", penalty_ratio(n)),
            ]
        })
        .collect();
    println!("Section VI.B circuit results (28nm constants from the paper's OpenRAM flow)");
    println!(
        "{}",
        render_table(
            &[
                "design",
                "array overhead",
                "banked overhead",
                "total EVE overhead",
                "cycle time",
                "clock penalty",
            ],
            &rows
        )
    );
    println!("baseline vanilla SRAM cycle time: {}", cycle_time(0));
}
