//! Cluster-resilience campaign: sweeps shard count × tenant count ×
//! storm shape over one measured service profile, running the sharded
//! cluster simulation for every cell and replaying each cell's trace
//! through the cluster auditor (routing, stealing, and shedding
//! identities included).
//!
//! Output is a deterministic JSON document — the same flags always
//! produce byte-identical bytes, serial or parallel (cell seeds are
//! pre-derived serially in grid order, the service profile is measured
//! once before the fan-out, and results merge in grid order; set
//! `EVE_BENCH_THREADS=1` to force one thread). A panicking or hung
//! cell becomes an error row, is summarized on stderr, and fails the
//! process — as does any audit violation or SDC.
//!
//! ```text
//! cluster_campaign [--seed N] [--factor N] [--shards S1,S2,..]
//!                  [--tenants T1,T2,..]
//!                  [--shapes calm,mixed,partition,hotkey,shardkill,diurnal,bursty,keystorm,phased]
//!                  [--requests N] [--gap CYCLES] [--slack F]
//!                  [--workloads N] [--elastic] [--net [L1,L2,..]]
//! ```
//!
//! Storm shapes:
//!
//! * `calm` — no faults at all; the fairness/batching baseline.
//! * `mixed` — a synthetic storm of brownouts, silent windows, and
//!   kills at intensity 1.0.
//! * `partition` — a light synthetic storm plus a scripted shard
//!   partition that heals mid-run.
//! * `hotkey` — a light synthetic storm plus a hot-key-skew window
//!   aimed at one shard.
//! * `shardkill` — a hot-key window aimed at a victim shard whose
//!   engines are then all killed mid-window: the work-stealing and
//!   degradation-ladder stress case.
//!
//! Traffic shapes (seeded arrival processes under a light storm):
//!
//! * `diurnal` — the arrival rate follows a triangle wave over the
//!   run, peak load at twice the trough.
//! * `bursty` — count-based request bursts at 8× the nominal rate,
//!   mean rate conserved; the batching/admission stress case.
//! * `keystorm` — a periodic arrival-side viral-key storm aimed at
//!   one shard, with no fault storm at all: pure load skew.
//! * `phased` — a one-shot lead → burst → tail trace with no fault
//!   storm: the elastic-reconfiguration stress case (pair it with
//!   `--elastic`).
//!
//! `--elastic` turns on the elastic engine/L2-way controller for every
//! cell, with headroom of two extra engine slots per shard above the
//! configured base; the summary then rolls up cluster-wide spawn /
//! retire / rollback tallies. It is off by default so historical
//! campaign bytes replay unchanged.
//!
//! `--net [L1,L2,..]` adds a lossy-transport axis to the grid: each
//! listed loss percentage becomes one more sweep dimension, running
//! every (shards × tenants × shape) cell again with the deterministic
//! interconnect enabled at that loss rate (duplication at half the
//! loss rate and 5% reordering ride along, per
//! [`NetPolicy::lossy`]). With no value the axis defaults to
//! `0,2,5`. The summary rolls up retransmit / hedge / dedup /
//! suspicion tallies, and the exit-code policy also fails the run on
//! any double-applied request. Off by default, so transport-free
//! campaign bytes replay unchanged.

use eve_bench::pool;
use eve_common::json::JsonValue;
use eve_common::SplitMix64;
use eve_obs::Tracer;
use eve_serve::{
    audit_cluster, tenant_mix, ClusterConfig, ClusterSim, ClusterTraffic, ElasticPolicy,
    FaultStorm, NetPolicy, Router, ServiceProfile, TrafficShape,
};
use eve_workloads::Workload;
use std::sync::Arc;

/// One sweep cell's coordinates, seeds pre-derived in grid order.
#[derive(Debug, Clone, Copy)]
struct Cell {
    shards: usize,
    tenants: usize,
    shape: &'static str,
    /// Transport loss percentage for this cell; `None` runs the
    /// historical direct-dispatch path.
    loss_pct: Option<u8>,
    storm_seed: u64,
    cluster_seed: u64,
    traffic_seed: u64,
}

struct Plan {
    seed: u64,
    factor: u32,
    shards: Vec<usize>,
    tenants: Vec<usize>,
    shapes: Vec<&'static str>,
    engines_per_shard: usize,
    requests: usize,
    /// Mean inter-arrival gap; `None` (the default) derives it from
    /// the measured profile so offered load tracks the workload suite.
    mean_gap: Option<u64>,
    deadline_slack: f64,
    /// Elastic engine/L2-way reconfiguration for every cell.
    elastic: bool,
    /// Lossy-transport axis: loss percentages to sweep, or `None` to
    /// keep the historical direct-dispatch grid.
    net: Option<Vec<u8>>,
}

impl Default for Plan {
    fn default() -> Self {
        Self {
            seed: 0xC1_0537_CA3E,
            factor: 8,
            shards: vec![2, 4],
            tenants: vec![1, 3],
            shapes: vec![
                "calm",
                "mixed",
                "partition",
                "hotkey",
                "shardkill",
                "diurnal",
                "bursty",
                "keystorm",
            ],
            engines_per_shard: 4,
            requests: 300,
            mean_gap: None,
            deadline_slack: 6.0,
            elastic: false,
            net: None,
        }
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn shape_name(s: &str) -> &'static str {
    match s {
        "calm" => "calm",
        "mixed" => "mixed",
        "partition" => "partition",
        "hotkey" => "hotkey",
        "shardkill" => "shardkill",
        "diurnal" => "diurnal",
        "bursty" => "bursty",
        "keystorm" => "keystorm",
        "phased" => "phased",
        other => panic!(
            "unknown shape {other:?} \
             (calm|mixed|partition|hotkey|shardkill|diurnal|bursty|keystorm|phased)"
        ),
    }
}

/// Expands the plan into its cell list. Seed derivation must stay
/// here — serial, in grid order — or parallel runs would diverge from
/// serial ones.
fn cells(plan: &Plan) -> Vec<Cell> {
    let mut seeder = SplitMix64::new(plan.seed);
    // No `--net`: a single `None` axis point keeps the historical
    // grid (and its seed stream) byte-for-byte.
    let losses: Vec<Option<u8>> = match &plan.net {
        Some(l) => l.iter().map(|&p| Some(p)).collect(),
        None => vec![None],
    };
    let mut out = Vec::new();
    for &shards in &plan.shards {
        for &tenants in &plan.tenants {
            for &shape in &plan.shapes {
                for &loss_pct in &losses {
                    out.push(Cell {
                        shards,
                        tenants,
                        shape,
                        loss_pct,
                        storm_seed: seeder.next_u64(),
                        cluster_seed: seeder.next_u64(),
                        traffic_seed: seeder.next_u64(),
                    });
                }
            }
        }
    }
    out
}

/// Builds the cell's fault storm. The victim shard for targeted shapes
/// is the last one, and hot keys are found by probing the same seeded
/// ring the simulation will build, so the skew provably lands on the
/// victim.
fn build_storm(cell: Cell, cfg: &ClusterConfig, keys: u64, horizon: u64) -> FaultStorm {
    // Synthetic storms address the *slot* space so elastic cells can
    // lose engines that only exist once the controller spawns them.
    let engines = cfg.shards * cfg.slots_per_shard();
    let victim = cfg.shards - 1;
    let ring = Router::new(cfg.seed, cfg.shards, cfg.vnodes);
    let hot = ring.key_for_shard(victim, keys).unwrap_or(0);
    match cell.shape {
        "calm" => FaultStorm::synth(cell.storm_seed, engines, horizon, 0.0),
        "mixed" => FaultStorm::synth(cell.storm_seed, engines, horizon, 1.0),
        "partition" => FaultStorm::synth(cell.storm_seed, engines, horizon, 0.5)
            .merged(FaultStorm::partition(victim, horizon / 4, horizon / 4)),
        "hotkey" => FaultStorm::synth(cell.storm_seed, engines, horizon, 0.5)
            .merged(FaultStorm::hot_key(hot, horizon / 4, horizon / 2)),
        "shardkill" => FaultStorm::hot_key(hot, horizon / 4, horizon / 2).merged(
            FaultStorm::kill_shard(victim, cfg.engines_per_shard, horizon * 3 / 8),
        ),
        // Traffic shapes keep the silicon calm-to-lightly-stormy: the
        // interesting pressure comes from the arrival process.
        "diurnal" | "bursty" => FaultStorm::synth(cell.storm_seed, engines, horizon, 0.5),
        "keystorm" | "phased" => FaultStorm::synth(cell.storm_seed, engines, horizon, 0.0),
        other => panic!("unknown shape {other:?}"),
    }
}

/// Builds the cell's arrival-process shape. Fault-storm shapes keep
/// the uniform baseline; traffic shapes modulate arrivals, with the
/// key-storm victim found by probing the same seeded ring as
/// [`build_storm`].
fn traffic_shape(
    cell: Cell,
    cfg: &ClusterConfig,
    keys: u64,
    horizon: u64,
    requests: usize,
) -> TrafficShape {
    match cell.shape {
        "diurnal" => TrafficShape::Diurnal {
            period: (horizon / 2).max(2),
        },
        "phased" => TrafficShape::Phased {
            lead: requests as u64 / 4,
            burst: requests as u64 / 2,
            gain: 4,
        },
        "bursty" => TrafficShape::Bursty {
            burst: 24,
            quiet: 72,
            gain: 8,
        },
        "keystorm" => {
            let victim = cfg.shards - 1;
            let ring = Router::new(cfg.seed, cfg.shards, cfg.vnodes);
            TrafficShape::HotKeyStorm {
                key: ring.key_for_shard(victim, keys).unwrap_or(0),
                every: (horizon / 2).max(1),
                duration: (horizon / 4).max(1),
            }
        }
        _ => TrafficShape::Uniform,
    }
}

/// One finished cell: its JSON row plus the numbers the summary and
/// exit-code policy need.
struct CellOutcome {
    row: JsonValue,
    availability: f64,
    min_tenant_availability: f64,
    sdc: u64,
    steals: u64,
    step_downs: u64,
    step_ups: u64,
    elastic_spawns: u64,
    elastic_retires: u64,
    elastic_rollbacks: u64,
    retransmits: u64,
    hedges: u64,
    hedge_wins: u64,
    dedup_absorbed: u64,
    suspicions: u64,
    double_applied: u64,
}

/// Runs one cell: build the storm, run the cluster simulation under a
/// fresh tracer, audit the trace, and render the row.
fn run_cell(plan: &Plan, profile: &ServiceProfile, cell: Cell) -> Result<CellOutcome, String> {
    let mean_gap = plan.mean_gap.unwrap_or_else(|| profile.mean_eve_cycles());
    let horizon = plan.requests as u64 * mean_gap;
    let cfg = ClusterConfig {
        shards: cell.shards,
        engines_per_shard: plan.engines_per_shard,
        elastic: ElasticPolicy {
            enabled: plan.elastic,
            min_engines: 1,
            max_engines: plan.engines_per_shard + 2,
            ..ElasticPolicy::default()
        },
        net: match cell.loss_pct {
            Some(p) => NetPolicy::lossy(f64::from(p) / 100.0),
            None => NetPolicy::default(),
        },
        seed: cell.cluster_seed,
        ..ClusterConfig::default()
    };
    let traffic = ClusterTraffic {
        requests: plan.requests,
        mean_gap,
        shape: traffic_shape(
            cell,
            &cfg,
            ClusterTraffic::default().keys,
            horizon,
            plan.requests,
        ),
        deadline_slack: plan.deadline_slack,
        tenants: tenant_mix(cell.tenants),
        seed: cell.traffic_seed,
        ..ClusterTraffic::default()
    };
    let storm = build_storm(cell, &cfg, traffic.keys, horizon);
    let tracer = Tracer::new();
    let report = ClusterSim::new(cfg, profile.clone(), traffic, storm)
        .map_err(|e| e.to_string())?
        .with_tracer(&tracer)
        .run();
    let audit = audit_cluster(&tracer, &report).map_err(|e| format!("audit: {e}"))?;
    let min_tenant_availability = report
        .tenants
        .iter()
        .filter(|t| t.admitted > 0)
        .map(|t| t.availability)
        .fold(1.0f64, f64::min);
    let mut fields = vec![
        ("shards", JsonValue::from(cell.shards as u64)),
        ("tenants", JsonValue::from(cell.tenants as u64)),
        ("shape", JsonValue::from(cell.shape)),
        ("storm_seed", JsonValue::from(cell.storm_seed)),
    ];
    if let Some(p) = cell.loss_pct {
        fields.push(("loss_pct", JsonValue::from(u64::from(p))));
    }
    fields.extend([
        ("audited_events", JsonValue::from(audit.events as u64)),
        (
            "audited_identities",
            JsonValue::from(audit.identities as u64),
        ),
        (
            "min_tenant_availability",
            JsonValue::from(min_tenant_availability),
        ),
        ("report", report.to_json()),
    ]);
    let row = JsonValue::object(fields);
    Ok(CellOutcome {
        row,
        availability: report.availability,
        min_tenant_availability,
        sdc: report.sdc,
        steals: report.steals,
        step_downs: report.step_downs(),
        step_ups: report.step_ups(),
        elastic_spawns: report.elastic_spawns,
        elastic_retires: report.elastic_retires,
        elastic_rollbacks: report.elastic_spawn_rollbacks + report.elastic_retire_rollbacks,
        retransmits: report.net.retransmits,
        hedges: report.net.hedges,
        hedge_wins: report.net.hedge_wins,
        dedup_absorbed: report.net.dedup_hits + report.net.dup_suppressed,
        suspicions: report.net.suspicions,
        double_applied: report.net.double_applied,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut plan = Plan::default();
    if let Some(seed) = flag_value(&args, "--seed") {
        plan.seed = seed.parse().expect("--seed takes a u64");
    }
    if let Some(factor) = flag_value(&args, "--factor") {
        plan.factor = factor.parse().expect("--factor takes a u32");
    }
    if let Some(shards) = flag_value(&args, "--shards") {
        plan.shards = shards
            .split(',')
            .map(|s| s.parse().expect("--shards takes comma-separated counts"))
            .collect();
    }
    if let Some(tenants) = flag_value(&args, "--tenants") {
        plan.tenants = tenants
            .split(',')
            .map(|t| t.parse().expect("--tenants takes comma-separated counts"))
            .collect();
    }
    if let Some(shapes) = flag_value(&args, "--shapes") {
        plan.shapes = shapes.split(',').map(shape_name).collect();
    }
    if let Some(requests) = flag_value(&args, "--requests") {
        plan.requests = requests.parse().expect("--requests takes a count");
    }
    if let Some(gap) = flag_value(&args, "--gap") {
        plan.mean_gap = Some(gap.parse().expect("--gap takes cycles"));
    }
    if let Some(slack) = flag_value(&args, "--slack") {
        plan.deadline_slack = slack.parse().expect("--slack takes a float");
    }
    if args.iter().any(|a| a == "--elastic") {
        plan.elastic = true;
    }
    if let Some(i) = args.iter().position(|a| a == "--net") {
        // `--net` takes an optional comma-separated list of loss
        // percentages; bare `--net` (or `--net` followed by another
        // flag) sweeps the default 0/2/5 axis.
        let losses = match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => v
                .split(',')
                .map(|p| {
                    let p: u8 = p.parse().expect("--net takes comma-separated percentages");
                    assert!(p <= 100, "--net percentages must be <= 100");
                    p
                })
                .collect(),
            _ => vec![0, 2, 5],
        };
        plan.net = Some(losses);
    }
    let workloads: Vec<Workload> = match flag_value(&args, "--workloads") {
        Some(n) => Workload::tiny_suite()
            .into_iter()
            .take(n.parse().expect("--workloads takes a count"))
            .collect(),
        None => Workload::tiny_suite(),
    };
    // The profile is measured ONCE with the real timing model, before
    // the fan-out, so every cell prices service identically and the
    // measurement never races the sweep.
    let profile = Arc::new(
        ServiceProfile::measured(plan.factor, &workloads, plan.engines_per_shard)
            .expect("profile measurement succeeds"),
    );
    let grid = Arc::new(cells(&plan));
    let plan = Arc::new(plan);
    let results = pool::try_run_jobs(grid.len(), {
        let grid = Arc::clone(&grid);
        let plan = Arc::clone(&plan);
        let profile = Arc::clone(&profile);
        move |i| run_cell(&plan, &profile, grid[i])
    });

    let mut rows = Vec::with_capacity(results.len());
    let mut errors: Vec<(Cell, String)> = Vec::new();
    let mut min_availability = f64::INFINITY;
    let mut min_tenant_availability = f64::INFINITY;
    let mut total_sdc = 0u64;
    let mut steals = 0u64;
    let mut step_downs = 0u64;
    let mut step_ups = 0u64;
    let mut elastic_spawns = 0u64;
    let mut elastic_retires = 0u64;
    let mut elastic_rollbacks = 0u64;
    let mut retransmits = 0u64;
    let mut hedges = 0u64;
    let mut hedge_wins = 0u64;
    let mut dedup_absorbed = 0u64;
    let mut suspicions = 0u64;
    let mut double_applied = 0u64;
    for (result, &cell) in results.into_iter().zip(grid.iter()) {
        match result {
            Ok(Ok(outcome)) => {
                min_availability = min_availability.min(outcome.availability);
                min_tenant_availability =
                    min_tenant_availability.min(outcome.min_tenant_availability);
                total_sdc += outcome.sdc;
                steals += outcome.steals;
                step_downs += outcome.step_downs;
                step_ups += outcome.step_ups;
                elastic_spawns += outcome.elastic_spawns;
                elastic_retires += outcome.elastic_retires;
                elastic_rollbacks += outcome.elastic_rollbacks;
                retransmits += outcome.retransmits;
                hedges += outcome.hedges;
                hedge_wins += outcome.hedge_wins;
                dedup_absorbed += outcome.dedup_absorbed;
                suspicions += outcome.suspicions;
                double_applied += outcome.double_applied;
                rows.push(outcome.row);
            }
            Ok(Err(msg)) => errors.push((cell, msg)),
            Err(job_err) => errors.push((cell, job_err.to_string())),
        }
    }
    for (cell, msg) in &errors {
        rows.push(JsonValue::object([
            ("shards", JsonValue::from(cell.shards as u64)),
            ("tenants", JsonValue::from(cell.tenants as u64)),
            ("shape", JsonValue::from(cell.shape)),
            ("storm_seed", JsonValue::from(cell.storm_seed)),
            ("error", JsonValue::from(msg.as_str())),
        ]));
    }
    eprintln!(
        "cluster_campaign: {} cells, {} error rows, min availability {:.4}, \
         min tenant availability {:.4}, {} SDCs, {} steals, {} down / {} up, \
         elastic {} spawned / {} retired / {} rolled back, \
         net {} retransmits / {} hedges ({} won) / {} deduped / {} suspicions / \
         {} double-applied",
        grid.len(),
        errors.len(),
        if min_availability.is_finite() {
            min_availability
        } else {
            0.0
        },
        if min_tenant_availability.is_finite() {
            min_tenant_availability
        } else {
            0.0
        },
        total_sdc,
        steals,
        step_downs,
        step_ups,
        elastic_spawns,
        elastic_retires,
        elastic_rollbacks,
        retransmits,
        hedges,
        hedge_wins,
        dedup_absorbed,
        suspicions,
        double_applied
    );
    for (cell, msg) in &errors {
        eprintln!(
            "  error cell: shards={} tenants={} shape={}: {}",
            cell.shards, cell.tenants, cell.shape, msg
        );
    }
    let doc = JsonValue::object([
        ("seed", JsonValue::from(plan.seed)),
        ("factor", JsonValue::from(u64::from(plan.factor))),
        (
            "engines_per_shard",
            JsonValue::from(plan.engines_per_shard as u64),
        ),
        (
            "profile",
            JsonValue::object([
                (
                    "workloads",
                    JsonValue::Array(
                        profile
                            .names
                            .iter()
                            .map(|n| JsonValue::from(n.as_str()))
                            .collect(),
                    ),
                ),
                (
                    "eve_cycles",
                    JsonValue::Array(profile.eve_cycles.iter().map(|&c| c.into()).collect()),
                ),
                (
                    "fallback_cycles",
                    JsonValue::Array(profile.fallback_cycles.iter().map(|&c| c.into()).collect()),
                ),
            ]),
        ),
        (
            "summary",
            JsonValue::object([
                ("cells", JsonValue::from(grid.len() as u64)),
                ("failed", JsonValue::from(errors.len() as u64)),
                (
                    "min_availability",
                    JsonValue::from(if min_availability.is_finite() {
                        min_availability
                    } else {
                        0.0
                    }),
                ),
                (
                    "min_tenant_availability",
                    JsonValue::from(if min_tenant_availability.is_finite() {
                        min_tenant_availability
                    } else {
                        0.0
                    }),
                ),
                ("total_sdc", JsonValue::from(total_sdc)),
                ("steals", JsonValue::from(steals)),
                ("ladder_step_downs", JsonValue::from(step_downs)),
                ("ladder_step_ups", JsonValue::from(step_ups)),
                ("elastic", JsonValue::from(plan.elastic)),
                ("elastic_spawns", JsonValue::from(elastic_spawns)),
                ("elastic_retires", JsonValue::from(elastic_retires)),
                ("elastic_rollbacks", JsonValue::from(elastic_rollbacks)),
                ("net", JsonValue::from(plan.net.is_some())),
                ("net_retransmits", JsonValue::from(retransmits)),
                ("net_hedges", JsonValue::from(hedges)),
                ("net_hedge_wins", JsonValue::from(hedge_wins)),
                ("net_dedup_absorbed", JsonValue::from(dedup_absorbed)),
                ("net_suspicions", JsonValue::from(suspicions)),
                ("net_double_applied", JsonValue::from(double_applied)),
            ]),
        ),
        ("runs", JsonValue::Array(rows)),
    ]);
    println!("{}", doc.to_pretty());
    if !errors.is_empty() || total_sdc > 0 || double_applied > 0 {
        std::process::exit(1);
    }
}
