//! Regenerates **Fig 4**: the `add` and `mul` macro-operation
//! μprograms, listed in the paper's tuple notation, for a chosen
//! bit-hybrid configuration (default EVE-8).
//!
//! ```sh
//! cargo run --release -p eve-bench --bin fig4_uprograms -- 4
//! ```

use eve_uop::{count_cycles, listing, HybridConfig, MacroOpKind, ProgramLibrary};

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let cfg = HybridConfig::new(n).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let lib = ProgramLibrary::new(cfg);
    println!(
        "Fig 4 micro-programs for {cfg} ({} segments of {} bits)\n",
        cfg.segments(),
        cfg.segment_bits()
    );
    for kind in [MacroOpKind::Add, MacroOpKind::Mul] {
        let prog = lib.program(kind);
        println!("{}", listing(&prog));
        println!("executes in {}\n", count_cycles(&prog, cfg));
    }
}
