//! Ablation: VSU execution pipes — the §IX future-work exploration
//! ("dynamic micro-operation scheduling ... with the help of an
//! out-of-order core"), quantified.
//!
//! Sweeps 1–4 compute pipes on the compute-bound kernels. Kernels with
//! independent macro-ops in flight (mmult's multiply-accumulate
//! stream) gain; dependence-chained kernels cannot.

use eve_bench::render_table;
use eve_core::EngineTuning;
use eve_mem::HierarchyConfig;
use eve_sim::Runner;
use eve_workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let workloads = if tiny {
        vec![Workload::Mmult { n: 16 }, Workload::Sw { n: 48 }]
    } else {
        vec![Workload::Mmult { n: 96 }, Workload::Sw { n: 256 }]
    };
    let runner = Runner::new();
    let mut rows = Vec::new();
    for w in &workloads {
        let mut base = 0u64;
        for pipes in [1usize, 2, 4] {
            let tuning = EngineTuning {
                exec_pipes: pipes,
                ..EngineTuning::default()
            };
            let r = runner
                .run_eve_tuned(8, tuning, w, HierarchyConfig::table_iii())
                .expect("tuned engine runs");
            if pipes == 1 {
                base = r.cycles.0;
            }
            rows.push(vec![
                w.name().to_string(),
                pipes.to_string(),
                r.cycles.0.to_string(),
                format!("{:.2}x", base as f64 / r.cycles.0 as f64),
            ]);
        }
    }
    println!("Ablation: EVE-8 VSU exec pipes (dynamic uop scheduling, paper SIX)");
    println!(
        "{}",
        render_table(&["workload", "pipes", "cycles", "speedup"], &rows)
    );
}
