//! Regenerates **Fig 6**: performance of every system on every kernel,
//! normalized to the in-order core, plus the Table IV speedup columns.
//!
//! Run with `--tiny` for a fast smoke sweep, `--json` for raw data.
//! Workloads run in parallel (`EVE_BENCH_THREADS` overrides the worker
//! count); rows merge in suite order, so output bytes match a serial
//! run.

use eve_bench::{fmt_x, pool, render_table};
use eve_common::json::JsonValue;
use eve_sim::experiments::{geomean_speedup, workload_perf};
use eve_sim::SystemKind;
use eve_workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let json = args.iter().any(|a| a == "--json");
    let suite = if tiny {
        Workload::tiny_suite()
    } else {
        Workload::suite()
    };
    let perf = pool::run_jobs(suite.len(), |i| workload_perf(&suite[i]))
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .expect("simulation succeeds");

    if json {
        let doc = JsonValue::array(perf.iter().map(|wp| {
            JsonValue::object([
                ("workload", JsonValue::from(wp.workload.clone())),
                ("scalar_dyn_insts", JsonValue::from(wp.scalar_dyn_insts)),
                ("vector_dyn_insts", JsonValue::from(wp.vector_dyn_insts)),
                (
                    "cells",
                    JsonValue::array(wp.cells.iter().map(|c| {
                        JsonValue::object([
                            ("system", JsonValue::from(c.system.clone())),
                            ("cycles", JsonValue::from(c.cycles)),
                            ("wall_ps", JsonValue::from(c.wall_ps)),
                            ("speedup_vs_io", JsonValue::from(c.speedup_vs_io)),
                        ])
                    })),
                ),
            ])
        }));
        println!("{}", doc.to_pretty());
        return;
    }

    let systems: Vec<String> = SystemKind::all().iter().map(ToString::to_string).collect();
    let mut headers: Vec<&str> = vec!["workload"];
    headers.extend(systems.iter().map(String::as_str));
    let mut rows = Vec::new();
    for wp in &perf {
        let mut row = vec![wp.workload.clone()];
        row.extend(wp.cells.iter().map(|c| fmt_x(c.speedup_vs_io)));
        rows.push(row);
    }
    let mut geo = vec!["geomean".to_string()];
    for sys in &systems {
        geo.push(fmt_x(geomean_speedup(&perf, sys)));
    }
    rows.push(geo);

    println!("Fig 6: speedup over IO (wall-time basis, cycle-time adjusted)");
    println!("{}", render_table(&headers, &rows));
}
