//! Regenerates **Table IV**: benchmark characterization (instruction
//! counts and vector mix at VL = 64, like the paper's) plus the
//! speedup-vs-O3+IV columns and the EVE-8 ratios.
//!
//! `--tiny` swaps in the smoke-test inputs; `--eval-scale` swaps in
//! [`Workload::eval_scale_suite`], which promotes spmv and histogram
//! to evaluation-scale inputs so the gather-imbalance and
//! scatter-conflict columns (VPar in particular) are measured at
//! depth. The flags are mutually exclusive.

use eve_bench::{fmt_x, render_table};
use eve_isa::{Characterization, Interpreter};
use eve_sim::{Runner, SystemKind};
use eve_workloads::Workload;

fn characterize(built: &eve_workloads::Built, hw_vl: u32, vector: bool) -> Characterization {
    let prog = if vector {
        built.vector.clone()
    } else {
        built.scalar.clone()
    };
    let mut i = Interpreter::new(prog, built.memory.clone(), hw_vl);
    let mut c = Characterization::new();
    while let Some(r) = i.step().expect("kernel runs") {
        c.record(&r);
    }
    c
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let eval_scale = args.iter().any(|a| a == "--eval-scale");
    assert!(
        !(tiny && eval_scale),
        "--tiny and --eval-scale are mutually exclusive"
    );
    let suite = if tiny {
        Workload::tiny_suite()
    } else if eval_scale {
        Workload::eval_scale_suite()
    } else {
        Workload::suite()
    };

    // Characterization half (vector stats at VL = 64 as in the paper).
    let mut rows = Vec::new();
    for w in &suite {
        let built = w.build();
        let scalar = characterize(&built, 1, false);
        let vector = characterize(&built, 64, true);
        let mix = vector.mix_pct();
        rows.push(vec![
            built.name.to_string(),
            scalar.dyn_insts.to_string(),
            vector.dyn_insts.to_string(),
            format!("{:.0}%", vector.vector_inst_pct()),
            format!("{:.0}", mix[0]),
            format!("{:.0}", mix[1]),
            format!("{:.0}", mix[2]),
            format!("{:.0}", mix[3]),
            format!("{:.0}", mix[4]),
            format!("{:.0}", mix[5]),
            format!("{:.0}", mix[6]),
            format!("{:.0}", mix[7]),
            vector.ops.to_string(),
            format!("{:.0}%", vector.vector_op_pct()),
            format!("{:.1}", vector.logical_parallelism()),
            format!("{:.2}", vector.work_inflation(scalar.dyn_insts)),
            format!("{:.2}", vector.arithmetic_intensity()),
        ]);
    }
    println!("Table IV (characterization half, vector stats at VL=64)");
    println!(
        "{}",
        render_table(
            &[
                "name", "DIns(sc)", "DIns(v)", "VI%", "ctrl", "ialu", "imul", "xe", "us", "st",
                "idx", "prd", "DOp", "VO%", "VPar", "WInf", "ArInt",
            ],
            &rows
        )
    );

    // Speedup half: vs O3+IV, plus EVE-8 vs EVE-1 / EVE-32.
    let runner = Runner::new();
    let mut rows = Vec::new();
    for w in &suite {
        let iv = runner.run(SystemKind::O3Iv, w).expect("iv runs");
        let dv = runner.run(SystemKind::O3Dv, w).expect("dv runs");
        let eve: Vec<_> = [1u32, 2, 4, 8, 16, 32]
            .iter()
            .map(|&n| runner.run(SystemKind::EveN(n), w).expect("eve runs"))
            .collect();
        let e8 = &eve[3];
        rows.push(vec![
            w.name().to_string(),
            fmt_x(dv.speedup_over(&iv)),
            fmt_x(eve[0].speedup_over(&iv)),
            fmt_x(eve[1].speedup_over(&iv)),
            fmt_x(eve[2].speedup_over(&iv)),
            fmt_x(e8.speedup_over(&iv)),
            fmt_x(eve[4].speedup_over(&iv)),
            fmt_x(eve[5].speedup_over(&iv)),
            fmt_x(e8.speedup_over(&eve[0])),
            fmt_x(e8.speedup_over(&eve[5])),
        ]);
    }
    println!("Table IV (speedup half, vs O3+IV; last two: EVE-8 vs EVE-1 / EVE-32)");
    println!(
        "{}",
        render_table(
            &["name", "DV", "E-1", "E-2", "E-4", "E-8", "E-16", "E-32", "E8/E1", "E8/E32",],
            &rows
        )
    );
}
