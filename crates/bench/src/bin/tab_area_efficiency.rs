//! Regenerates the **§VII area-efficiency analysis**: geomean speedup
//! per unit area for every system, the comparison that makes EVE-8
//! "over twice the area-normalized performance" of the decoupled
//! engine.

use eve_bench::{fmt_x, render_table};
use eve_sim::experiments::{geomean_speedup, performance_matrix};
use eve_sim::SystemKind;
use eve_workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let suite = if tiny {
        Workload::tiny_suite()
    } else {
        Workload::suite()
    };
    let perf = performance_matrix(&suite).expect("simulation succeeds");

    let mut rows = Vec::new();
    let mut dv_norm = 0.0;
    let mut e8_norm = 0.0;
    for sys in SystemKind::all() {
        let label = sys.to_string();
        let speedup = geomean_speedup(&perf, &label);
        // Normalize area to the O3 core like the paper.
        let area = sys.relative_area();
        let norm = speedup / area;
        if sys == SystemKind::O3Dv {
            dv_norm = norm;
        }
        if sys == SystemKind::EveN(8) {
            e8_norm = norm;
        }
        rows.push(vec![
            label,
            fmt_x(speedup),
            format!("{area:.2}x"),
            fmt_x(norm),
        ]);
    }
    println!("Section VII: area-normalized performance (geomean over the suite)");
    println!(
        "{}",
        render_table(
            &[
                "system",
                "geomean speedup vs IO",
                "rel. area",
                "speedup / area"
            ],
            &rows
        )
    );
    println!(
        "EVE-8 / O3+DV area-normalized ratio: {:.2}x (paper: > 2x)",
        e8_norm / dv_norm
    );
}
