//! Ablation: LLC MSHR scaling on the MSHR-bound kernels — the §IX
//! future-work question ("address the limited MSHRs efficiently to
//! enable EVE to utilize memory bandwidth more effectively"),
//! quantified.
//!
//! Sweeps the LLC's miss-status registers and reports EVE-8 runtime on
//! backprop (giant strides) and vvadd (streaming): backprop keeps
//! improving far past the Table III budget of 32, vvadd saturates
//! early once DRAM bandwidth binds.

use eve_bench::render_table;
use eve_mem::HierarchyConfig;
use eve_sim::{Runner, SystemKind};
use eve_workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let (bp, vv) = if tiny {
        (
            Workload::Backprop {
                inputs: 4096,
                hidden: 16,
            },
            Workload::vvadd(8192),
        )
    } else {
        (
            Workload::Backprop {
                inputs: 49152,
                hidden: 16,
            },
            Workload::vvadd(65536),
        )
    };
    let runner = Runner::new();
    let mut rows = Vec::new();
    let mut base: Option<(u64, u64)> = None;
    for mshrs in [8u32, 16, 32, 64, 128, 256] {
        let mut cfg = HierarchyConfig::table_iii();
        cfg.llc.mshrs = mshrs;
        let rb = runner
            .run_with_memory(SystemKind::EveN(8), &bp, cfg.clone())
            .expect("backprop runs");
        let rv = runner
            .run_with_memory(SystemKind::EveN(8), &vv, cfg)
            .expect("vvadd runs");
        let (b0, v0) = *base.get_or_insert((rb.cycles.0, rv.cycles.0));
        rows.push(vec![
            mshrs.to_string(),
            rb.cycles.0.to_string(),
            format!("{:.2}x", b0 as f64 / rb.cycles.0 as f64),
            rv.cycles.0.to_string(),
            format!("{:.2}x", v0 as f64 / rv.cycles.0 as f64),
        ]);
    }
    println!("Ablation: LLC MSHRs vs EVE-8 runtime (speedups vs 8 MSHRs)");
    println!(
        "{}",
        render_table(
            &[
                "llc mshrs",
                "backprop cyc",
                "speedup",
                "vvadd cyc",
                "speedup"
            ],
            &rows
        )
    );
}
