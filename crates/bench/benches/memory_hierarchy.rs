//! Bench of the memory substrate: hit/miss path costs and the
//! MSHR-saturated pattern backprop triggers (Fig 8's mechanism).

use eve_bench::time_it;
use eve_common::Cycle;
use eve_mem::{Hierarchy, HierarchyConfig, Level};
use std::hint::black_box;

fn main() {
    {
        let mut h = Hierarchy::new(HierarchyConfig::table_iii());
        h.access(Level::L1D, 0x1000, false, Cycle(0));
        let mut t = 200u64;
        time_it("mem/l1_hits", || {
            t += 4;
            black_box(h.access(Level::L1D, 0x1000, false, Cycle(t)))
        });
    }

    {
        let mut addr = 0u64;
        let mut h = Hierarchy::new(HierarchyConfig::table_iii());
        let mut t = 0u64;
        time_it("mem/streaming_misses", || {
            addr += 64;
            t += 4;
            black_box(h.access(Level::L1D, addr, false, Cycle(t)))
        });
    }

    time_it("mem/llc_mshr_saturation_burst", || {
        let mut h = Hierarchy::new(HierarchyConfig::table_iii());
        let mut wait = Cycle::ZERO;
        // A 256-line burst against 32 LLC MSHRs, like a large-stride
        // EVE vector load.
        for i in 0..256u64 {
            let a = h.access(Level::Llc, 0x100_0000 + i * 4096, false, Cycle(i));
            wait += a.mshr_wait;
        }
        assert!(wait.0 > 0, "burst must hit MSHR back-pressure");
        black_box(wait)
    });
}
