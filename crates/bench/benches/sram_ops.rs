//! Bench of the bit-accurate EVE SRAM: μprogram execution cost on the
//! host for the hot macro-operations, across bit-serial, bit-hybrid,
//! and bit-parallel configurations.

use eve_bench::time_it;
use eve_sram::{Binding, EveArray};
use eve_uop::{HybridConfig, MacroOpKind, ProgramLibrary};
use std::hint::black_box;

fn main() {
    for n in [1u32, 8, 32] {
        let cfg = HybridConfig::new(n).unwrap();
        let lib = ProgramLibrary::new(cfg);
        for kind in [MacroOpKind::Add, MacroOpKind::Mul] {
            let prog = lib.program(kind);
            let mut arr = EveArray::new(cfg, 64);
            for lane in 0..64 {
                arr.write_element(1, lane, lane as u32 * 0x9E37 + 7);
                arr.write_element(2, lane, lane as u32 * 0x79B9 + 3);
            }
            time_it(&format!("sram/macro_ops/eve{n}/{}", prog.name()), || {
                black_box(arr.execute(&prog, &Binding::new(3, 1, 2)))
            });
        }
    }

    let cfg = HybridConfig::new(8).unwrap();
    let mut arr = EveArray::new(cfg, 64);
    time_it("sram/element_roundtrip", || {
        for lane in 0..64 {
            arr.write_element(5, lane, lane as u32);
        }
        let mut sum = 0u32;
        for lane in 0..64 {
            sum = sum.wrapping_add(arr.read_element(5, lane));
        }
        black_box(sum)
    });
}
