//! Criterion bench of the simulator's own substrate: functional
//! interpretation throughput (instructions/second on the host) and
//! full-system simulation rates. These bound how large an input the
//! evaluation can afford.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eve_isa::Interpreter;
use eve_workloads::Workload;
use std::hint::black_box;

fn bench_functional_interpretation(c: &mut Criterion) {
    let built = Workload::Mmult { n: 24 }.build();
    // Count the dynamic instructions once.
    let mut probe = Interpreter::new(built.scalar.clone(), built.memory.clone(), 1);
    probe.run_to_halt().expect("runs");
    let insts = probe.retired_count();

    let mut group = c.benchmark_group("interp");
    group.throughput(Throughput::Elements(insts));
    group.sample_size(10);
    group.bench_function("scalar_mmult24", |b| {
        b.iter(|| {
            let mut i = Interpreter::new(built.scalar.clone(), built.memory.clone(), 1);
            i.run_to_halt().expect("runs");
            black_box(i.retired_count())
        });
    });
    group.bench_function("vector_mmult24_vl64", |b| {
        b.iter(|| {
            let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), 64);
            i.run_to_halt().expect("runs");
            black_box(i.retired_count())
        });
    });
    group.finish();
}

fn bench_program_generation(c: &mut Criterion) {
    use eve_uop::{HybridConfig, MacroOpKind, ProgramLibrary};
    c.bench_function("uop/generate_divu_eve1", |b| {
        let lib = ProgramLibrary::new(HybridConfig::new(1).unwrap());
        b.iter(|| black_box(lib.program(MacroOpKind::Divu)));
    });
}

criterion_group!(benches, bench_functional_interpretation, bench_program_generation);
criterion_main!(benches);
