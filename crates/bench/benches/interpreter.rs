//! Bench of the simulator's own substrate: functional interpretation
//! throughput (instructions/second on the host) and μprogram
//! generation. These bound how large an input the evaluation can
//! afford.

use eve_bench::time_it;
use eve_isa::Interpreter;
use eve_workloads::Workload;
use std::hint::black_box;

fn main() {
    let built = Workload::Mmult { n: 24 }.build();
    // Count the dynamic instructions once.
    let mut probe = Interpreter::new(built.scalar.clone(), built.memory.clone(), 1);
    probe.run_to_halt().expect("runs");
    println!(
        "interp: mmult24 retires {} scalar insts",
        probe.retired_count()
    );

    time_it("interp/scalar_mmult24", || {
        let mut i = Interpreter::new(built.scalar.clone(), built.memory.clone(), 1);
        i.run_to_halt().expect("runs");
        black_box(i.retired_count())
    });
    time_it("interp/vector_mmult24_vl64", || {
        let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), 64);
        i.run_to_halt().expect("runs");
        black_box(i.retired_count())
    });

    {
        use eve_uop::{HybridConfig, MacroOpKind, ProgramLibrary};
        let lib = ProgramLibrary::new(HybridConfig::new(1).unwrap());
        time_it("uop/generate_divu_eve1", || {
            black_box(lib.program(MacroOpKind::Divu))
        });
    }
}
