//! Bench driving the Fig 6 simulations on reduced inputs: times whole
//! system simulations end-to-end (interpret + timing + golden
//! verification) and asserts the headline ordering — EVE-8 and O3+DV
//! both beat O3+IV — on every sample.

use eve_bench::time_it;
use eve_sim::{Runner, SystemKind};
use eve_workloads::Workload;
use std::hint::black_box;

fn main() {
    let w = Workload::vvadd(4096);
    for sys in [
        SystemKind::Io,
        SystemKind::O3,
        SystemKind::O3Iv,
        SystemKind::O3Dv,
        SystemKind::EveN(8),
    ] {
        time_it(&format!("fig6/vvadd4k/{sys}"), || {
            black_box(Runner::new().run(sys, &w).expect("runs"))
        });
    }

    let w = Workload::Pathfinder {
        rows: 4,
        cols: 2048,
    };
    time_it("fig6/ordering/iv_dv_eve8", || {
        let runner = Runner::new();
        let iv = runner.run(SystemKind::O3Iv, &w).expect("iv");
        let dv = runner.run(SystemKind::O3Dv, &w).expect("dv");
        let e8 = runner.run(SystemKind::EveN(8), &w).expect("e8");
        assert!(dv.wall_ps < iv.wall_ps, "DV must beat IV on pathfinder");
        assert!(e8.wall_ps < iv.wall_ps, "EVE-8 must beat IV on pathfinder");
        black_box((iv, dv, e8))
    });
}
