//! Criterion bench for the Fig 2 analytical spectrum: measures the
//! μprogram-backed latency/throughput model and asserts its shape on
//! every iteration (a regenerating benchmark — the series it times is
//! exactly the figure's data).

use criterion::{criterion_group, criterion_main, Criterion};
use eve_analytical::spectrum::spectrum_paper;
use std::hint::black_box;

fn bench_spectrum(c: &mut Criterion) {
    c.bench_function("fig2/spectrum_paper", |b| {
        b.iter(|| {
            let pts = spectrum_paper();
            // The figure's headline claims must hold every time.
            assert_eq!(pts.len(), 6);
            let peak = pts
                .iter()
                .max_by(|a, b| a.add_throughput.total_cmp(&b.add_throughput))
                .unwrap();
            assert_eq!(peak.factor, 4);
            black_box(pts)
        });
    });
}

fn bench_latency_tables(c: &mut Criterion) {
    use eve_uop::{HybridConfig, LatencyTable, MacroOpKind};
    let mut group = c.benchmark_group("fig2/latency_table");
    for n in [1u32, 8, 32] {
        group.bench_function(format!("eve{n}_mul"), |b| {
            b.iter(|| {
                let mut t = LatencyTable::new(HybridConfig::new(n).unwrap());
                black_box(t.latency(MacroOpKind::Mul))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spectrum, bench_latency_tables);
criterion_main!(benches);
