//! Bench for the Fig 2 analytical spectrum: measures the
//! μprogram-backed latency/throughput model and asserts its shape on
//! every iteration (a regenerating benchmark — the series it times is
//! exactly the figure's data).

use eve_analytical::spectrum::spectrum_paper;
use eve_bench::time_it;
use std::hint::black_box;

fn main() {
    time_it("fig2/spectrum_paper", || {
        let pts = spectrum_paper();
        // The figure's headline claims must hold every time.
        assert_eq!(pts.len(), 6);
        let peak = pts
            .iter()
            .max_by(|a, b| a.add_throughput.total_cmp(&b.add_throughput))
            .unwrap();
        assert_eq!(peak.factor, 4);
        black_box(pts)
    });

    {
        use eve_uop::{HybridConfig, LatencyTable, MacroOpKind};
        for n in [1u32, 8, 32] {
            time_it(&format!("fig2/latency_table/eve{n}_mul"), || {
                let mut t = LatencyTable::new(HybridConfig::new(n).unwrap());
                black_box(t.latency(MacroOpKind::Mul))
            });
        }
    }
}
