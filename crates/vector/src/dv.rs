//! The decoupled vector engine (Table III "O3+DV", Fig 5).
//!
//! Loosely after Tarantula: hardware vector length 64, an instruction
//! queue fed at commit, in-order issue onto four dedicated pipes of 8
//! lanes each, register chaining through an internal scoreboard, and a
//! vector memory unit that translates each generated cache-line
//! request (one cycle per request, always-hit TLB) and sends it to the
//! private L2 (§VII-A).

use crate::pipes::{classify_pipe, element_cost, PipeClass};
use eve_common::{Cycle, Stats};
use eve_cpu::{EngineError, VectorPlacement, VectorUnit};
use eve_isa::{Inst, MemEffect, RegId, Retired};
use eve_mem::{Hierarchy, Level, Tlb, LINE_BYTES};
use eve_obs::Tracer;

/// Hardware vector length in elements.
pub const DV_HW_VL: u32 = 64;
/// Lanes per execution pipe.
pub const DV_LANES: u64 = 8;
/// Instruction-queue depth between the core and the engine.
const QUEUE_DEPTH: usize = 16;
/// Pipe startup latency (decode + operand fetch across the lanes).
const STARTUP: u64 = 4;

/// The decoupled vector engine.
#[derive(Debug, Default)]
pub struct DecoupledVector {
    /// Completion times of queued/issued instructions (bounded FIFO).
    queue_done: std::collections::VecDeque<Cycle>,
    pipes: [Cycle; 4],
    vreg_ready: [Cycle; 32],
    last_issue: Cycle,
    pending_store_done: Cycle,
    idle_at: Cycle,
    tlb: Tlb,
    stats: Stats,
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    tracer: Option<Tracer>,
}

impl DecoupledVector {
    /// A fresh engine.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn pipe_index(class: PipeClass) -> usize {
        match class {
            PipeClass::Simple => 0,
            PipeClass::Complex => 1,
            PipeClass::Iterative => 2,
            PipeClass::Memory => 3,
        }
    }

    #[cfg(feature = "obs")]
    fn pipe_name(class: PipeClass) -> &'static str {
        match class {
            PipeClass::Simple => "simple",
            PipeClass::Complex => "complex",
            PipeClass::Iterative => "iterative",
            PipeClass::Memory => "memory",
        }
    }

    fn vreg_deps(&self, r: &Retired) -> Cycle {
        let mut t = Cycle::ZERO;
        for dep in r.reads.iter().flatten() {
            if let RegId::V(v) = dep {
                t = t.max(self.vreg_ready[v.index() as usize]);
            }
        }
        t
    }

    /// Cache-line requests a vector memory instruction generates.
    fn line_requests(mem: &MemEffect) -> Vec<u64> {
        let mut lines: Vec<u64> = match mem {
            MemEffect::VecUnit { base, bytes, .. } => {
                let first = base / LINE_BYTES;
                let last = (base + bytes.saturating_sub(1)) / LINE_BYTES;
                (first..=last).collect()
            }
            MemEffect::VecStrided {
                base,
                stride,
                count,
                ..
            } => (0..u64::from(*count))
                .map(|i| ((*base as i64 + stride * i as i64) as u64) / LINE_BYTES)
                .collect(),
            MemEffect::VecIndexed { addrs, .. } => addrs.iter().map(|a| a / LINE_BYTES).collect(),
            _ => Vec::new(),
        };
        // Adjacent duplicates collapse (the VMU guarantees line
        // alignment and coalesces a run within one line, §V-C).
        lines.dedup();
        lines
    }
}

impl VectorUnit for DecoupledVector {
    fn hw_vl(&self) -> u32 {
        DV_HW_VL
    }

    fn issue(
        &mut self,
        r: &Retired,
        _ready: Cycle,
        commit: Cycle,
        mem: &mut Hierarchy,
    ) -> Result<VectorPlacement, EngineError> {
        self.stats.incr("issued");
        // Queue back-pressure: a full queue delays acceptance until the
        // oldest instruction completes.
        let mut accept = commit;
        while self.queue_done.len() >= QUEUE_DEPTH {
            let oldest = self.queue_done.pop_front().expect("nonempty");
            if oldest > accept {
                self.stats
                    .add("queue_stall_cycles", oldest.saturating_since(accept).0);
                accept = oldest;
            }
        }

        if matches!(r.inst, Inst::VMFence) {
            // Fence: answer once all pending engine stores are visible.
            let done = self.pending_store_done.max(self.idle_at).max(accept);
            return Ok(VectorPlacement::Decoupled {
                accept,
                writeback: Some(done),
            });
        }

        let class = classify_pipe(&r.inst).unwrap_or(PipeClass::Simple);
        let pipe = Self::pipe_index(class);
        // In-order issue: after the previous instruction issued, the
        // operands are ready (chaining), and the pipe is free.
        let start = accept
            .max(self.last_issue)
            .max(self.vreg_deps(r))
            .max(self.pipes[pipe]);
        self.last_issue = start;

        let vl = u64::from(r.vl.max(1));
        let completion = match class {
            PipeClass::Memory => {
                let store = r.mem.is_store();
                let lines = Self::line_requests(&r.mem);
                self.stats.add("line_requests", lines.len() as u64);
                let mut done = start + Cycle(STARTUP);
                let mut t = start;
                for line in lines {
                    // One request generated + translated per cycle.
                    t = self.tlb.translate(line * LINE_BYTES, t);
                    let a = mem.access(Level::L2, line * LINE_BYTES, store, t);
                    self.stats.add("vmu_mshr_wait", a.mshr_wait.0);
                    done = done.max(a.complete);
                }
                self.pipes[pipe] = t;
                if store {
                    self.pending_store_done = self.pending_store_done.max(done);
                    t + Cycle(1)
                } else {
                    done
                }
            }
            _ => {
                let occupancy = vl.div_ceil(DV_LANES) * element_cost(class, &r.inst);
                self.pipes[pipe] = start + Cycle(occupancy);
                start + Cycle(occupancy + STARTUP)
            }
        };

        if let Some(RegId::V(v)) = r.write {
            self.vreg_ready[v.index() as usize] = completion;
        }
        self.idle_at = self.idle_at.max(completion);
        self.queue_done.push_back(completion);
        #[cfg(feature = "obs")]
        if let Some(tr) = &self.tracer {
            // Issue is in order, so starts are monotone on the track.
            let pipe_cat = Self::pipe_name(class);
            tr.span("dv", pipe_cat, pipe_cat, start.0, (completion - start).0);
            tr.record("dv.queue_depth", self.queue_done.len() as u64);
        }

        // Scalar writebacks stall the core's commit (§V-A).
        let writeback = match r.inst {
            Inst::VMvXS { .. } => Some(completion),
            _ => None,
        };
        Ok(VectorPlacement::Decoupled { accept, writeback })
    }

    fn drain(&mut self, _mem: &mut Hierarchy) -> Cycle {
        self.idle_at.max(self.pending_store_done)
    }

    fn stats(&self) -> Stats {
        let mut s = self.stats.clone();
        s.set("hw_vl", u64::from(DV_HW_VL));
        for (k, v) in self.tlb.stats().iter() {
            s.add(&format!("tlb.{k}"), v);
        }
        s
    }

    fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = Some(tracer.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::{vreg, xreg, VArithOp, VOperand, VStride};
    use eve_mem::HierarchyConfig;

    fn retired(inst: Inst, vl: u32, memeff: MemEffect, write: Option<RegId>) -> Retired {
        Retired {
            seq: 0,
            pc: 0,
            inst,
            reads: [None; 4],
            write,
            mem: memeff,
            vl,
            branch: None,
            scalar_operand: None,
        }
    }

    fn vadd(vd: u8) -> Inst {
        Inst::VOp {
            op: VArithOp::Add,
            vd: eve_isa::Vreg::new(vd),
            vs1: vreg::V2,
            rhs: VOperand::Imm(1),
            masked: false,
        }
    }

    #[test]
    fn occupancy_scales_with_vl_over_lanes() {
        let mut dv = DecoupledVector::new();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let p = dv
            .issue(
                &retired(vadd(3), 64, MemEffect::None, Some(RegId::V(vreg::V3))),
                Cycle(0),
                Cycle(0),
                &mut mem,
            )
            .unwrap();
        match p {
            VectorPlacement::Decoupled { accept, .. } => assert_eq!(accept, Cycle(0)),
            other => panic!("{other:?}"),
        }
        // 64 elements / 8 lanes = 8 cycles + startup.
        assert_eq!(dv.idle_at, Cycle(8 + STARTUP));
    }

    #[test]
    fn chaining_orders_dependent_ops() {
        let mut dv = DecoupledVector::new();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        dv.issue(
            &retired(vadd(3), 64, MemEffect::None, Some(RegId::V(vreg::V3))),
            Cycle(0),
            Cycle(0),
            &mut mem,
        )
        .unwrap();
        // Dependent op reading v3.
        let mut dep = retired(vadd(4), 64, MemEffect::None, Some(RegId::V(vreg::V4)));
        dep.reads[0] = Some(RegId::V(vreg::V3));
        dv.issue(&dep, Cycle(0), Cycle(0), &mut mem).unwrap();
        assert!(dv.idle_at >= Cycle(2 * 8 + STARTUP), "{:?}", dv.idle_at);
    }

    #[test]
    fn unit_stride_generates_line_requests() {
        let mut dv = DecoupledVector::new();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let ld = Inst::VLoad {
            vd: vreg::V1,
            base: xreg::A0,
            stride: VStride::Unit,
            masked: false,
        };
        let eff = MemEffect::VecUnit {
            base: 0x1000,
            bytes: 256, // 64 elements
            store: false,
        };
        dv.issue(
            &retired(ld, 64, eff, Some(RegId::V(vreg::V1))),
            Cycle(0),
            Cycle(0),
            &mut mem,
        )
        .unwrap();
        assert_eq!(dv.stats().get("line_requests"), 4); // 256B / 64B
    }

    #[test]
    fn large_stride_touches_one_line_per_element() {
        let mut dv = DecoupledVector::new();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let ld = Inst::VLoad {
            vd: vreg::V1,
            base: xreg::A0,
            stride: VStride::Strided(xreg::A1),
            masked: false,
        };
        let eff = MemEffect::VecStrided {
            base: 0x1000,
            stride: 4096,
            count: 64,
            store: false,
        };
        dv.issue(
            &retired(ld, 64, eff, Some(RegId::V(vreg::V1))),
            Cycle(0),
            Cycle(0),
            &mut mem,
        )
        .unwrap();
        assert_eq!(dv.stats().get("line_requests"), 64);
        // 64 distinct lines against 32 L2 MSHRs: some waiting occurred.
        assert!(dv.stats().get("vmu_mshr_wait") > 0);
    }

    #[test]
    fn fence_answers_after_stores() {
        let mut dv = DecoupledVector::new();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let st = Inst::VStore {
            vs: vreg::V1,
            base: xreg::A0,
            stride: VStride::Unit,
            masked: false,
        };
        let eff = MemEffect::VecUnit {
            base: 0x2000,
            bytes: 256,
            store: true,
        };
        dv.issue(&retired(st, 64, eff, None), Cycle(0), Cycle(0), &mut mem)
            .unwrap();
        let f = dv
            .issue(
                &retired(Inst::VMFence, 64, MemEffect::None, None),
                Cycle(1),
                Cycle(1),
                &mut mem,
            )
            .unwrap();
        match f {
            VectorPlacement::Decoupled {
                writeback: Some(wb),
                ..
            } => assert!(wb > Cycle(50)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn queue_backpressure() {
        let mut dv = DecoupledVector::new();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        // Flood with slow iterative ops at t=0.
        let div = Inst::VOp {
            op: VArithOp::Divu,
            vd: vreg::V3,
            vs1: vreg::V2,
            rhs: VOperand::Imm(3),
            masked: false,
        };
        let mut last_accept = Cycle(0);
        for _ in 0..QUEUE_DEPTH + 4 {
            match dv
                .issue(
                    &retired(div, 64, MemEffect::None, Some(RegId::V(vreg::V3))),
                    Cycle(0),
                    Cycle(0),
                    &mut mem,
                )
                .unwrap()
            {
                VectorPlacement::Decoupled { accept, .. } => last_accept = accept,
                other => panic!("{other:?}"),
            }
        }
        assert!(last_accept > Cycle(0), "queue never pushed back");
        assert!(dv.stats().get("queue_stall_cycles") > 0);
    }
}

#[cfg(test)]
mod xe_tests {
    use super::*;
    use eve_isa::vreg;
    use eve_mem::HierarchyConfig;

    #[test]
    fn reductions_occupy_the_iterative_pipe() {
        let mut dv = DecoupledVector::new();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let red = Inst::VRed {
            op: eve_isa::RedOp::Sum,
            vd: vreg::V3,
            vs2: vreg::V1,
            vs1: vreg::V2,
        };
        let r = Retired {
            seq: 0,
            pc: 0,
            inst: red,
            reads: [
                Some(RegId::V(vreg::V1)),
                Some(RegId::V(vreg::V2)),
                None,
                None,
            ],
            write: Some(RegId::V(vreg::V3)),
            mem: MemEffect::None,
            vl: 64,
            branch: None,
            scalar_operand: None,
        };
        dv.issue(&r, Cycle(0), Cycle(0), &mut mem).unwrap();
        // 64 elements / 8 lanes x 2 cycles + startup on the iterative pipe.
        assert_eq!(dv.idle_at, Cycle(16 + STARTUP));
        // A simple add right after is unaffected (different pipe), only
        // in-order issue orders the start.
        let add = Inst::VOp {
            op: eve_isa::VArithOp::Add,
            vd: vreg::V4,
            vs1: vreg::V5,
            rhs: eve_isa::VOperand::Imm(1),
            masked: false,
        };
        let r2 = Retired {
            seq: 1,
            pc: 1,
            inst: add,
            reads: [Some(RegId::V(vreg::V5)), None, None, None],
            write: Some(RegId::V(vreg::V4)),
            mem: MemEffect::None,
            vl: 64,
            branch: None,
            scalar_operand: None,
        };
        dv.issue(&r2, Cycle(0), Cycle(0), &mut mem).unwrap();
        assert_eq!(dv.idle_at, Cycle(16 + STARTUP)); // add finishes earlier
    }
}
