//! Execution-pipe classification shared by the baseline units.

use eve_isa::{Inst, VArithOp};

/// Which execution pipe a vector instruction occupies (DV's four-pipe
/// organization; IV folds `Complex`/`Iterative` onto its second pipe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipeClass {
    /// Simple integer: add/sub/logic/shift/min/max/compare/merge/moves.
    Simple,
    /// Pipelined complex integer: multiplies.
    Complex,
    /// Iterative complex integer and cross-element: divides,
    /// reductions, slides, gathers.
    Iterative,
    /// Memory.
    Memory,
}

/// Classifies a vector instruction onto a pipe. Returns `None` for
/// non-vector instructions and for `vsetvl` (handled by the control
/// processor).
#[must_use]
pub fn classify_pipe(inst: &Inst) -> Option<PipeClass> {
    match inst {
        Inst::VLoad { .. } | Inst::VStore { .. } => Some(PipeClass::Memory),
        Inst::VOp { op, .. } => Some(match op {
            VArithOp::Mul | VArithOp::Macc | VArithOp::Mulh | VArithOp::Mulhu => PipeClass::Complex,
            VArithOp::Div | VArithOp::Divu | VArithOp::Rem | VArithOp::Remu => PipeClass::Iterative,
            _ => PipeClass::Simple,
        }),
        Inst::VCmp { .. } | Inst::VMerge { .. } | Inst::VMask { .. } | Inst::VMv { .. } => {
            Some(PipeClass::Simple)
        }
        Inst::VRed { .. }
        | Inst::VSlide { .. }
        | Inst::VRGather { .. }
        | Inst::VId { .. }
        | Inst::VMvXS { .. }
        | Inst::VMvSX { .. } => Some(PipeClass::Iterative),
        Inst::VMFence => Some(PipeClass::Memory),
        _ => None,
    }
}

/// Per-element issue cost on the pipe, in lane-cycles.
#[must_use]
pub fn element_cost(class: PipeClass, inst: &Inst) -> u64 {
    match class {
        PipeClass::Simple => 1,
        PipeClass::Complex => 1, // pipelined multiplier
        PipeClass::Iterative => match inst {
            Inst::VOp { .. } => 6, // iterative divider
            _ => 2,                // reduction/permute network
        },
        PipeClass::Memory => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::{vreg, xreg, VOperand};

    #[test]
    fn classification_covers_vector_surface() {
        let add = Inst::VOp {
            op: VArithOp::Add,
            vd: vreg::V1,
            vs1: vreg::V2,
            rhs: VOperand::Imm(0),
            masked: false,
        };
        assert_eq!(classify_pipe(&add), Some(PipeClass::Simple));
        let mul = Inst::VOp {
            op: VArithOp::Mul,
            vd: vreg::V1,
            vs1: vreg::V2,
            rhs: VOperand::Imm(0),
            masked: false,
        };
        assert_eq!(classify_pipe(&mul), Some(PipeClass::Complex));
        let div = Inst::VOp {
            op: VArithOp::Divu,
            vd: vreg::V1,
            vs1: vreg::V2,
            rhs: VOperand::Imm(0),
            masked: false,
        };
        assert_eq!(classify_pipe(&div), Some(PipeClass::Iterative));
        assert_eq!(
            classify_pipe(&Inst::VId { vd: vreg::V1 }),
            Some(PipeClass::Iterative)
        );
        assert_eq!(classify_pipe(&Inst::VMFence), Some(PipeClass::Memory));
        assert_eq!(classify_pipe(&Inst::Halt), None);
        assert_eq!(
            classify_pipe(&Inst::SetVl {
                rd: xreg::T0,
                avl: xreg::A0
            }),
            None
        );
    }

    #[test]
    fn iterative_ops_cost_more() {
        let div = Inst::VOp {
            op: VArithOp::Divu,
            vd: vreg::V1,
            vs1: vreg::V2,
            rhs: VOperand::Imm(1),
            masked: false,
        };
        assert!(element_cost(PipeClass::Iterative, &div) > element_cost(PipeClass::Simple, &div));
    }
}
