//! The baseline vector units: integrated (**O3+IV**) and decoupled
//! (**O3+DV**) from Table III.
//!
//! * [`IntegratedVector`] models a small SIMD-width unit tightly
//!   coupled into the O3 pipeline (loosely after the Samsung M3 / ARM
//!   SVE designs the paper cites): hardware vector length 4,
//!   out-of-order issue onto three pipes shared with the core, and
//!   vector memory decomposed into per-element scalar accesses through
//!   the core's load-store queue.
//! * [`DecoupledVector`] models an aggressive long-vector engine
//!   (loosely after Tarantula, Fig 5): hardware vector length 64,
//!   in-order issue onto four dedicated pipes (simple integer,
//!   pipelined complex, iterative complex / cross-element, memory)
//!   with 8 lanes each, chaining through an internal register
//!   scoreboard, and a dedicated vector memory unit that generates
//!   cache-line requests into the L2.
//!
//! Both implement [`eve_cpu::VectorUnit`], so they plug straight into
//! the O3 core.

pub mod dv;
pub mod iv;
pub mod pipes;

pub use dv::DecoupledVector;
pub use iv::IntegratedVector;
pub use pipes::{classify_pipe, PipeClass};
