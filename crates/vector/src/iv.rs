//! The integrated vector unit (Table III "O3+IV").
//!
//! A 4-element-VL unit sharing the O3 core's resources: two arithmetic
//! pipes and the memory pipe / load-store queue. Vector memory
//! operations — including constant strides and gathers — are decomposed
//! into per-element scalar accesses handled by the LSQ, exactly the
//! behaviour the paper describes (§VII-A: "constant strides and indexed
//! memory operations are decomposed to micro-operations and handled as
//! scalar loads/stores by the load-store queue").

use crate::pipes::{classify_pipe, element_cost, PipeClass};
use eve_common::{Cycle, Stats};
use eve_cpu::{EngineError, VectorPlacement, VectorUnit};
use eve_isa::{Inst, MemEffect, Retired};
use eve_mem::{Hierarchy, Level};

/// Hardware vector length (elements) — conventional SIMD width.
pub const IV_HW_VL: u32 = 4;

/// The integrated vector unit.
#[derive(Debug, Default)]
pub struct IntegratedVector {
    arith_pipes: [Cycle; 2],
    mem_pipe: Cycle,
    pending_store_done: Cycle,
    stats: Stats,
}

impl IntegratedVector {
    /// A fresh unit.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn claim_arith(&mut self, at: Cycle) -> Cycle {
        let pipe = if self.arith_pipes[0] <= self.arith_pipes[1] {
            0
        } else {
            1
        };
        let start = at.max(self.arith_pipes[pipe]);
        self.arith_pipes[pipe] = start + Cycle(1);
        start
    }

    fn element_addrs(mem: &MemEffect) -> Vec<u64> {
        match mem {
            MemEffect::VecUnit { base, bytes, .. } => {
                (0..bytes / 4).map(|i| base + i * 4).collect()
            }
            MemEffect::VecStrided {
                base,
                stride,
                count,
                ..
            } => (0..u64::from(*count))
                .map(|i| (*base as i64 + stride * i as i64) as u64)
                .collect(),
            MemEffect::VecIndexed { addrs, .. } => addrs.clone(),
            _ => Vec::new(),
        }
    }
}

impl VectorUnit for IntegratedVector {
    fn hw_vl(&self) -> u32 {
        IV_HW_VL
    }

    fn issue(
        &mut self,
        r: &Retired,
        ready: Cycle,
        _commit: Cycle,
        mem: &mut Hierarchy,
    ) -> Result<VectorPlacement, EngineError> {
        let class = classify_pipe(&r.inst).unwrap_or(PipeClass::Simple);
        self.stats.incr("issued");
        let completion = match class {
            PipeClass::Memory if matches!(r.inst, Inst::VMFence) => {
                // Shares the LSQ: fence waits for pending stores.
                ready.max(self.pending_store_done) + Cycle(1)
            }
            PipeClass::Memory => {
                // Decompose into per-element scalar LSQ operations.
                let store = r.mem.is_store();
                let addrs = Self::element_addrs(&r.mem);
                self.stats.add("lsq_uops", addrs.len() as u64);
                let mut done = ready;
                let mut t = ready;
                for addr in addrs {
                    // One LSQ slot per cycle on the shared memory pipe.
                    t = t.max(self.mem_pipe);
                    self.mem_pipe = t + Cycle(1);
                    let a = mem.access(Level::L1D, addr, store, t);
                    done = done.max(a.complete);
                }
                if store {
                    self.pending_store_done = self.pending_store_done.max(done);
                    // Stores retire into the LSQ; completion for the
                    // window is issue-bounded.
                    t + Cycle(1)
                } else {
                    done
                }
            }
            PipeClass::Simple => self.claim_arith(ready) + Cycle(1),
            PipeClass::Complex => self.claim_arith(ready) + Cycle(3),
            PipeClass::Iterative => {
                let per = element_cost(class, &r.inst);
                let start = self.claim_arith(ready);
                start + Cycle(per * u64::from(r.vl.max(1)))
            }
        };
        Ok(VectorPlacement::InWindow { completion })
    }

    fn drain(&mut self, _mem: &mut Hierarchy) -> Cycle {
        self.pending_store_done
    }

    fn stats(&self) -> Stats {
        let mut s = self.stats.clone();
        s.set("hw_vl", u64::from(IV_HW_VL));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::{vreg, xreg, RegId, VArithOp, VOperand};
    use eve_mem::HierarchyConfig;

    fn retired(inst: Inst, vl: u32, memeff: MemEffect) -> Retired {
        Retired {
            seq: 0,
            pc: 0,
            inst,
            reads: [None; 4],
            write: Some(RegId::V(vreg::V1)),
            mem: memeff,
            vl,
            branch: None,
            scalar_operand: None,
        }
    }

    #[test]
    fn arith_uses_two_pipes() {
        let mut iv = IntegratedVector::new();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let add = Inst::VOp {
            op: VArithOp::Add,
            vd: vreg::V1,
            vs1: vreg::V2,
            rhs: VOperand::Imm(1),
            masked: false,
        };
        let c: Vec<Cycle> = (0..3)
            .map(|_| {
                match iv
                    .issue(
                        &retired(add, 4, MemEffect::None),
                        Cycle(0),
                        Cycle(0),
                        &mut mem,
                    )
                    .unwrap()
                {
                    VectorPlacement::InWindow { completion } => completion,
                    other => panic!("{other:?}"),
                }
            })
            .collect();
        // Two pipes absorb two ops at t=0; the third queues.
        assert_eq!(c[0], Cycle(1));
        assert_eq!(c[1], Cycle(1));
        assert_eq!(c[2], Cycle(2));
    }

    #[test]
    fn memory_decomposes_per_element() {
        let mut iv = IntegratedVector::new();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let ld = Inst::VLoad {
            vd: vreg::V1,
            base: xreg::A0,
            stride: eve_isa::VStride::Unit,
            masked: false,
        };
        let eff = MemEffect::VecUnit {
            base: 0x1000,
            bytes: 16,
            store: false,
        };
        iv.issue(&retired(ld, 4, eff), Cycle(0), Cycle(0), &mut mem)
            .unwrap();
        assert_eq!(iv.stats().get("lsq_uops"), 4);
    }

    #[test]
    fn fence_waits_for_stores() {
        let mut iv = IntegratedVector::new();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let st = Inst::VStore {
            vs: vreg::V1,
            base: xreg::A0,
            stride: eve_isa::VStride::Unit,
            masked: false,
        };
        let eff = MemEffect::VecUnit {
            base: 0x2000,
            bytes: 16,
            store: true,
        };
        iv.issue(&retired(st, 4, eff), Cycle(0), Cycle(0), &mut mem)
            .unwrap();
        let f = iv
            .issue(
                &retired(Inst::VMFence, 4, MemEffect::None),
                Cycle(0),
                Cycle(0),
                &mut mem,
            )
            .unwrap();
        match f {
            VectorPlacement::InWindow { completion } => {
                assert!(
                    completion > Cycle(50),
                    "fence before store done: {completion:?}"
                )
            }
            other => panic!("{other:?}"),
        }
    }
}

#[cfg(test)]
mod gather_tests {
    use super::*;
    use eve_isa::{vreg, xreg, RegId, VStride};
    use eve_mem::HierarchyConfig;

    #[test]
    fn gathers_decompose_to_one_uop_per_element() {
        let mut iv = IntegratedVector::new();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let ld = Inst::VLoad {
            vd: vreg::V1,
            base: xreg::A0,
            stride: VStride::Indexed(vreg::V2),
            masked: false,
        };
        let r = Retired {
            seq: 0,
            pc: 0,
            inst: ld,
            reads: [None; 4],
            write: Some(RegId::V(vreg::V1)),
            mem: MemEffect::VecIndexed {
                addrs: vec![0x1000, 0x9000, 0x2000, 0x8000],
                store: false,
            },
            vl: 4,
            branch: None,
            scalar_operand: None,
        };
        iv.issue(&r, Cycle(0), Cycle(0), &mut mem).unwrap();
        assert_eq!(iv.stats().get("lsq_uops"), 4);
    }

    #[test]
    fn strided_access_also_goes_through_the_lsq() {
        let mut iv = IntegratedVector::new();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let ld = Inst::VLoad {
            vd: vreg::V1,
            base: xreg::A0,
            stride: VStride::Strided(xreg::A1),
            masked: false,
        };
        let r = Retired {
            seq: 0,
            pc: 0,
            inst: ld,
            reads: [None; 4],
            write: Some(RegId::V(vreg::V1)),
            mem: MemEffect::VecStrided {
                base: 0x4000,
                stride: 256,
                count: 4,
                store: false,
            },
            vl: 4,
            branch: None,
            scalar_operand: None,
        };
        iv.issue(&r, Cycle(0), Cycle(0), &mut mem).unwrap();
        assert_eq!(iv.stats().get("lsq_uops"), 4);
        // Distinct lines: four L1D misses.
        assert_eq!(mem.cache(Level::L1D).stats().get("misses"), 4);
    }
}
